//===- tests/guarded_pipeline_test.cpp - Guarded pipeline tests -*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
//
// The robustness layer: Diagnostic/Expected plumbing, the IR invariant
// verifier on deliberately corrupted graphs, guarded-execution determinism
// (a guarded run with no faults is byte-identical to an unguarded one),
// and resource-budget exhaustion.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "figures/PaperFigures.h"
#include "ir/Patterns.h"
#include "ir/Printer.h"
#include "support/Diag.h"
#include "transform/Pipeline.h"
#include "transform/UniformEmAm.h"
#include "verify/GraphVerifier.h"

#include <gtest/gtest.h>

using namespace am;
using test::parse;

//===----------------------------------------------------------------------===//
// Diagnostics
//===----------------------------------------------------------------------===//

TEST(Diag, RendersComponentLocationAndNotes) {
  diag::Diagnostic D = diag::Diagnostic::error("parse", "bad token", 3, 7);
  D.note("while reading a block");
  std::string Text = D.render();
  EXPECT_NE(Text.find("parse"), std::string::npos);
  EXPECT_NE(Text.find("3:7"), std::string::npos);
  EXPECT_NE(Text.find("error"), std::string::npos);
  EXPECT_NE(Text.find("bad token"), std::string::npos);
  EXPECT_NE(Text.find("note: while reading a block"), std::string::npos);
}

TEST(Diag, ExpectedCarriesValueOrDiagnostic) {
  diag::Expected<int> Ok(42);
  ASSERT_TRUE(Ok.ok());
  EXPECT_EQ(*Ok, 42);

  diag::Expected<int> Err(diag::Diagnostic::error("t", "nope"));
  ASSERT_FALSE(Err.ok());
  EXPECT_EQ(Err.diagnostic().Message, "nope");
}

TEST(Diag, ParsePassSpecValidatesNames) {
  auto Ok = parsePassSpec("lcm, cp ,lcm");
  ASSERT_TRUE(Ok.ok());
  EXPECT_EQ(Ok->size(), 3u);
  EXPECT_EQ((*Ok)[1], "cp");

  auto Unknown = parsePassSpec("lcm,bogus");
  ASSERT_FALSE(Unknown.ok());
  EXPECT_NE(Unknown.diagnostic().Message.find("bogus"), std::string::npos);

  auto Empty = parsePassSpec("  ,, ");
  ASSERT_FALSE(Empty.ok());
  EXPECT_EQ(Empty.diagnostic().Message, "empty pipeline");
}

TEST(Diag, ParseLimitsSpec) {
  auto L = parseLimitsSpec("am-rounds=8,growth=2.5,sweeps=100000,wall-ms=50");
  ASSERT_TRUE(L.ok());
  EXPECT_EQ(L->MaxAmRounds, 8u);
  EXPECT_DOUBLE_EQ(L->MaxInstrGrowth, 2.5);
  EXPECT_EQ(L->MaxSolverSweeps, 100000u);
  EXPECT_DOUBLE_EQ(L->MaxWallMs, 50.0);
  EXPECT_TRUE(L->any());

  EXPECT_TRUE(parseLimitsSpec("").ok());
  EXPECT_FALSE((*parseLimitsSpec("")).any());
  EXPECT_FALSE(parseLimitsSpec("growth").ok());
  EXPECT_FALSE(parseLimitsSpec("growth=abc").ok());
  EXPECT_FALSE(parseLimitsSpec("growth=-1").ok());
  EXPECT_FALSE(parseLimitsSpec("frobs=3").ok());
}

//===----------------------------------------------------------------------===//
// GraphVerifier on corrupted graphs
//===----------------------------------------------------------------------===//

namespace {

bool hasKind(const VerifyResult &R, ViolationKind K) {
  for (const Violation &V : R.Violations)
    if (V.K == K)
      return true;
  return false;
}

} // namespace

TEST(GraphVerifier, AcceptsTheFigures) {
  for (FlowGraph (*Fig)() : {figure1a, figure2a, figure4, figure8}) {
    VerifyResult R = verifyGraph(Fig());
    EXPECT_TRUE(R.ok()) << R.renderText();
  }
}

TEST(GraphVerifier, CatchesAsymmetricEdges) {
  FlowGraph G = figure4();
  // Rewire one successor without updating the predecessor list.
  for (BlockId B = 0; B < G.numBlocks(); ++B) {
    if (B == G.end() || G.block(B).Succs.empty())
      continue;
    G.block(B).Succs[0] = G.end() == G.block(B).Succs[0] ? G.start() : G.end();
    break;
  }
  VerifyResult R = verifyGraph(G);
  ASSERT_FALSE(R.ok());
  EXPECT_TRUE(hasKind(R, ViolationKind::Adjacency)) << R.renderText();
}

TEST(GraphVerifier, CatchesOutOfRangeSuccessor) {
  FlowGraph G = figure4();
  G.block(G.start()).Succs.push_back(G.numBlocks() + 7);
  VerifyResult R = verifyGraph(G);
  ASSERT_FALSE(R.ok());
  EXPECT_TRUE(hasKind(R, ViolationKind::Adjacency));
}

TEST(GraphVerifier, CatchesUnreachableBlocks) {
  FlowGraph G = parse("program { x := a + b; out(x); }");
  // A floating block pointing at the end, never entered from start.
  BlockId Stray = G.addBlock();
  G.addEdge(Stray, G.end());
  VerifyResult R = verifyGraph(G);
  ASSERT_FALSE(R.ok());
  EXPECT_TRUE(hasKind(R, ViolationKind::Reachability)) << R.renderText();
}

TEST(GraphVerifier, CatchesUnknownVariableReferences) {
  FlowGraph G = parse("program { x := a + b; out(x); }");
  for (BlockId B = 0; B < G.numBlocks(); ++B)
    for (Instr &I : G.block(B).Instrs)
      if (I.isAssign()) {
        I.Lhs = makeVarId(static_cast<uint32_t>(G.Vars.size()) + 100);
        goto corrupted;
      }
corrupted:
  VerifyResult R = verifyGraph(G);
  ASSERT_FALSE(R.ok());
  EXPECT_TRUE(hasKind(R, ViolationKind::VarRef)) << R.renderText();
}

TEST(GraphVerifier, CatchesDuplicateInstrIds) {
  FlowGraph G = figure4();
  uint32_t Next = 1;
  for (BlockId B = 0; B < G.numBlocks(); ++B)
    for (Instr &I : G.block(B).Instrs)
      I.Id = Next < 3 ? Next++ : 1; // third and later collide with #1
  VerifyResult R = verifyGraph(G);
  ASSERT_FALSE(R.ok());
  EXPECT_TRUE(hasKind(R, ViolationKind::DuplicateInstrId));
}

TEST(GraphVerifier, FlagsCriticalEdgesOnlyWhenRequired) {
  FlowGraph G = figure10a();
  ASSERT_TRUE(G.hasCriticalEdges());
  EXPECT_TRUE(verifyGraph(G).ok());
  VerifierOptions Opts;
  Opts.RequireSplitEdges = true;
  VerifyResult R = verifyGraph(G, Opts);
  ASSERT_FALSE(R.ok());
  EXPECT_TRUE(hasKind(R, ViolationKind::CriticalEdge));

  G.splitCriticalEdges();
  EXPECT_TRUE(verifyGraph(G, Opts).ok());
}

TEST(GraphVerifier, ViolationCapIsHonored) {
  FlowGraph G = figure4();
  for (BlockId B = 0; B < G.numBlocks(); ++B)
    for (Instr &I : G.block(B).Instrs)
      I.Id = 7; // every instruction collides
  VerifierOptions Opts;
  Opts.MaxViolations = 3;
  VerifyResult R = verifyGraph(G, Opts);
  EXPECT_LE(R.Violations.size(), 3u);
}

TEST(GraphVerifier, PatternCoherence) {
  FlowGraph G = figure4();
  AssignPatternTable Pats;
  Pats.build(G);
  EXPECT_TRUE(verifyPatternCoherence(G, Pats).ok());
  // Mutate the graph after building the table: a brand-new assignment
  // shape no longer resolves.
  VarId Z = G.Vars.getOrCreate("zfresh$");
  G.block(G.start())
      .Instrs.insert(G.block(G.start()).Instrs.begin(),
                     Instr::assign(Z, Term::binary(OpCode::Mul,
                                                   Operand::var(Z),
                                                   Operand::var(Z))));
  VerifyResult R = verifyPatternCoherence(G, Pats);
  ASSERT_FALSE(R.ok());
  EXPECT_TRUE(hasKind(R, ViolationKind::PatternTable)) << R.renderText();
}

//===----------------------------------------------------------------------===//
// Guarded execution
//===----------------------------------------------------------------------===//

TEST(GuardedPipeline, ZeroFaultRunIsByteIdenticalToUnguarded) {
  for (const char *Spec : {"uniform", "lcm,cp,lcm", "uniform,pde,simplify",
                           "split,init,rae,aht,flush,simplify"}) {
    PipelineResult Plain = runPipeline(figure4(), Spec);
    PipelineOptions Opts;
    Opts.Guarded = true;
    PipelineResult Guarded = runPipeline(figure4(), Spec, Opts);
    ASSERT_TRUE(Plain.ok()) << Plain.Error;
    ASSERT_TRUE(Guarded.ok()) << Guarded.Error;
    EXPECT_EQ(Guarded.RollbackCount, 0u);
    EXPECT_EQ(printGraph(Guarded.Graph), printGraph(Plain.Graph))
        << "spec: " << Spec;
    for (const PassRecord &Rec : Guarded.Records)
      EXPECT_EQ(Rec.Status, PassStatus::Ok) << Rec.Name << ": "
                                            << Rec.Violation;
  }
}

TEST(GuardedPipeline, VerifyIrModeAcceptsCleanRuns) {
  PipelineOptions Opts;
  Opts.VerifyIR = true;
  PipelineResult R = runPipeline(figure4(), "uniform,pde", Opts);
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_EQ(R.RollbackCount, 0u);
}

TEST(GuardedPipeline, RejectsCorruptInputGraph) {
  FlowGraph G = figure4();
  G.block(G.start()).Succs.push_back(G.numBlocks() + 3);
  PipelineOptions Opts;
  Opts.Guarded = true;
  PipelineResult R = runPipeline(G, "uniform", Opts);
  ASSERT_FALSE(R.ok());
  EXPECT_TRUE(R.Records.empty());
  EXPECT_NE(R.Diag.Message.find("input graph"), std::string::npos)
      << R.Diag.Message;
}

TEST(GuardedPipeline, SpecErrorsProduceDiagnostics) {
  PipelineOptions Opts;
  PipelineResult R = runPipeline(figure4(), "lcm,bogus", Opts);
  ASSERT_FALSE(R.ok());
  EXPECT_FALSE(R.Diag.empty());
  EXPECT_EQ(R.Error, "unknown pass 'bogus'");
}

//===----------------------------------------------------------------------===//
// Resource budgets
//===----------------------------------------------------------------------===//

TEST(PipelineLimitsTest, GrowthBudgetStopsTheRun) {
  // The uniform pass grows the running example (temp initializations);
  // an absurdly tight growth budget must trip after it.
  PipelineOptions Opts;
  Opts.Limits.MaxInstrGrowth = 1.0001;
  PipelineResult R = runPipeline(figure4(), "split,init,rae", Opts);
  ASSERT_FALSE(R.ok());
  EXPECT_TRUE(R.LimitsExhausted);
  ASSERT_FALSE(R.Records.empty());
  EXPECT_EQ(R.Records.back().Status, PassStatus::LimitExhausted);
  EXPECT_NE(R.Records.back().Violation.find("growth"), std::string::npos);
  EXPECT_NE(R.Error.find("budget exhausted"), std::string::npos);
}

TEST(PipelineLimitsTest, WallClockBudgetStopsTheRun) {
  PipelineOptions Opts;
  Opts.Limits.MaxWallMs = 1e-9; // any pass exceeds a nanosecond-scale budget
  PipelineResult R = runPipeline(figure4(), "uniform,pde,simplify", Opts);
  ASSERT_FALSE(R.ok());
  EXPECT_TRUE(R.LimitsExhausted);
  // The run stopped after the first pass; the rest never executed.
  EXPECT_LT(R.Records.size(), 3u);
}

TEST(PipelineLimitsTest, AmRoundCapIsPlumbedIntoTheFixpoint) {
  PipelineOptions Opts;
  Opts.Limits.MaxAmRounds = 1;
  PipelineResult R = runPipeline(figure4(), "uniform", Opts);
  ASSERT_TRUE(R.ok()) << R.Error;
  const PassRecord *Uniform = nullptr;
  for (const PassRecord &Rec : R.Records)
    if (Rec.Name == "uniform")
      Uniform = &Rec;
  ASSERT_NE(Uniform, nullptr);
  EXPECT_LE(Uniform->AmRounds, 1u);

  UniformStats Free;
  runUniformEmAm(figure4(), UniformOptions(), &Free);
  EXPECT_GT(Free.AmPhase.Iterations, 1u)
      << "figure4 should need several AM rounds for this test to bite";
}

TEST(PipelineLimitsTest, UnlimitedBudgetsNeverTrip) {
  PipelineOptions Opts; // all limits zero
  EXPECT_FALSE(Opts.Limits.any());
  PipelineResult R = runPipeline(figure4(), "uniform,pde,simplify", Opts);
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_FALSE(R.LimitsExhausted);
}

TEST(PipelineLimitsTest, RecordsRenderStatusInJson) {
  PipelineOptions Opts;
  Opts.Limits.MaxInstrGrowth = 1.0001;
  PipelineResult R = runPipeline(figure4(), "split,init,rae", Opts);
  std::string Json = passRecordsJson(R.Records);
  EXPECT_NE(Json.find("\"status\":\"limit-exhausted\""), std::string::npos)
      << Json;
}
