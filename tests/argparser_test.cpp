//===- tests/argparser_test.cpp - Declarative CLI parsing ------*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
//
// support::ArgParser, extracted from amopt's ad-hoc flag loop: the three
// flag shapes (flag / option / optionalValue), unknown- and repeated-flag
// rejection, value-shape errors, automatic --help, positionals and the
// rendered help text.
//
//===----------------------------------------------------------------------===//

#include "support/ArgParser.h"

#include <gtest/gtest.h>

using am::support::ArgParser;

namespace {

/// Runs \p Parser over \p Args (argv[0] is synthesized).
bool parse(ArgParser &Parser, std::initializer_list<const char *> Args) {
  std::vector<const char *> Argv{"prog"};
  Argv.insert(Argv.end(), Args.begin(), Args.end());
  return Parser.parse(static_cast<int>(Argv.size()), Argv.data());
}

TEST(ArgParser, FlagShapes) {
  bool Dot = false, Stats = false;
  std::string Pass, StatsValue;
  ArgParser P("t", "");
  P.flag("--dot", Dot, "dot");
  P.option("--pass", Pass, "pass");
  P.optionalValue("--stats", Stats, StatsValue, "stats", "json");

  EXPECT_TRUE(parse(P, {"--dot", "--pass=am", "--stats"}));
  EXPECT_TRUE(Dot);
  EXPECT_EQ(Pass, "am");
  EXPECT_TRUE(Stats);
  EXPECT_TRUE(StatsValue.empty());
  EXPECT_FALSE(P.helpRequested());
  EXPECT_TRUE(P.error().empty());
}

TEST(ArgParser, OptionalValueWithValue) {
  bool Present = false;
  std::string Value;
  ArgParser P("t", "");
  P.optionalValue("--remarks", Present, Value, "remarks", "file");
  EXPECT_TRUE(parse(P, {"--remarks=out.json"}));
  EXPECT_TRUE(Present);
  EXPECT_EQ(Value, "out.json");
}

TEST(ArgParser, UnknownFlagRejected) {
  ArgParser P("t", "");
  EXPECT_FALSE(parse(P, {"--bogus"}));
  EXPECT_EQ(P.error(), "unknown flag '--bogus'");
}

TEST(ArgParser, UnknownFlagWithValueNamesOnlyTheFlag) {
  ArgParser P("t", "");
  EXPECT_FALSE(parse(P, {"--bogus=3"}));
  EXPECT_EQ(P.error(), "unknown flag '--bogus'");
}

TEST(ArgParser, SingleDashIsUnknown) {
  ArgParser P("t", "");
  EXPECT_FALSE(parse(P, {"-x"}));
  EXPECT_EQ(P.error(), "unknown flag '-x'");
}

TEST(ArgParser, RepeatedFlagRejected) {
  bool Dot = false;
  ArgParser P("t", "");
  P.flag("--dot", Dot, "dot");
  EXPECT_FALSE(parse(P, {"--dot", "--dot"}));
  EXPECT_EQ(P.error(), "repeated flag '--dot'");
}

TEST(ArgParser, RepeatedOptionRejected) {
  std::string Pass;
  ArgParser P("t", "");
  P.option("--pass", Pass, "pass");
  EXPECT_FALSE(parse(P, {"--pass=am", "--pass=lcm"}));
  EXPECT_EQ(P.error(), "repeated flag '--pass'");
}

TEST(ArgParser, FlagRefusesValue) {
  bool Dot = false;
  ArgParser P("t", "");
  P.flag("--dot", Dot, "dot");
  EXPECT_FALSE(parse(P, {"--dot=yes"}));
  EXPECT_EQ(P.error(), "flag '--dot' does not take a value");
}

TEST(ArgParser, OptionRequiresValue) {
  std::string Pass;
  ArgParser P("t", "");
  P.option("--pass", Pass, "pass", "NAME");
  EXPECT_FALSE(parse(P, {"--pass"}));
  EXPECT_EQ(P.error(), "flag '--pass' requires =NAME");
}

TEST(ArgParser, OptionRejectsEmptyValue) {
  std::string Pass;
  ArgParser P("t", "");
  P.option("--pass", Pass, "pass", "NAME");
  EXPECT_FALSE(parse(P, {"--pass="}));
  EXPECT_EQ(P.error(), "flag '--pass' requires =NAME");
}

TEST(ArgParser, HelpStopsParsing) {
  bool Dot = false;
  ArgParser P("t", "");
  P.flag("--dot", Dot, "dot");
  EXPECT_TRUE(parse(P, {"--help", "--no-such-flag"}));
  EXPECT_TRUE(P.helpRequested());
  EXPECT_TRUE(P.error().empty());
  EXPECT_TRUE(parse(P, {"-h"}));
  EXPECT_TRUE(P.helpRequested());
}

TEST(ArgParser, PositionalsCollectedInOrder) {
  bool Dot = false;
  ArgParser P("t", "");
  P.flag("--dot", Dot, "dot");
  EXPECT_TRUE(parse(P, {"a.am", "--dot", "b.am"}));
  EXPECT_EQ(P.positional(),
            (std::vector<std::string>{"a.am", "b.am"}));
}

TEST(ArgParser, HelpTextListsEveryFlag) {
  bool Dot = false, Stats = false;
  std::string Pass, StatsValue;
  ArgParser P("amopt", "Optimizes things.");
  P.flag("--dot", Dot, "print DOT");
  P.option("--pass", Pass, "pass to run", "NAME");
  P.optionalValue("--stats", Stats, StatsValue, "dump stats", "json");

  std::string Help = P.helpText();
  EXPECT_NE(Help.find("usage: amopt"), std::string::npos);
  EXPECT_NE(Help.find("Optimizes things."), std::string::npos);
  EXPECT_NE(Help.find("--dot"), std::string::npos);
  EXPECT_NE(Help.find("--pass=NAME"), std::string::npos);
  EXPECT_NE(Help.find("--stats[=json]"), std::string::npos);
  EXPECT_NE(Help.find("--help"), std::string::npos);
  EXPECT_NE(Help.find("print DOT"), std::string::npos);
}

} // namespace
