//===- tests/fleet_test.cpp - Fleet telemetry layer tests ------*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
//
// The corpus observability substrate behind tools/ambatch: the shared
// log2 histogram geometry (stats:: helpers + fleet::Histogram), the
// determinism contract of the amagg-v1 aggregator (identical JSON for
// any job insertion order and any merge partitioning — the executable
// form of "byte-identical for any --threads"), the amevents-v1 round
// trip including truncation recovery, and the ranked corpus diff.
//
//===----------------------------------------------------------------------===//

#include "support/Aggregate.h"
#include "support/EventLog.h"
#include "support/Stats.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <random>
#include <sstream>
#include <string>
#include <vector>

using namespace am;

namespace {

//===----------------------------------------------------------------------===//
// Shared log2 bucket geometry
//===----------------------------------------------------------------------===//

TEST(Log2Buckets, BoundaryIndices) {
  // 0 and 1 share bucket 0; every power of two opens its own bucket.
  EXPECT_EQ(stats::log2BucketIndex(0, 64), 0u);
  EXPECT_EQ(stats::log2BucketIndex(1, 64), 0u);
  EXPECT_EQ(stats::log2BucketIndex(2, 64), 1u);
  EXPECT_EQ(stats::log2BucketIndex(3, 64), 1u);
  EXPECT_EQ(stats::log2BucketIndex(4, 64), 2u);
  EXPECT_EQ(stats::log2BucketIndex(7, 64), 2u);
  EXPECT_EQ(stats::log2BucketIndex(8, 64), 3u);
  EXPECT_EQ(stats::log2BucketIndex(uint64_t(1) << 40, 64), 40u);
  EXPECT_EQ((uint64_t(1) << 40) - 1, 0xFFFFFFFFFFull);
  EXPECT_EQ(stats::log2BucketIndex((uint64_t(1) << 40) - 1, 64), 39u);
}

TEST(Log2Buckets, ClampsToLastBucket) {
  EXPECT_EQ(stats::log2BucketIndex(uint64_t(1) << 63, 64), 63u);
  EXPECT_EQ(stats::log2BucketIndex(UINT64_MAX, 64), 63u);
  // A narrower array clamps sooner — the Timer's 40-bucket case.
  EXPECT_EQ(stats::log2BucketIndex(UINT64_MAX, 40), 39u);
  EXPECT_EQ(stats::log2BucketIndex(1024, 4), 3u);
}

TEST(Log2Buckets, PercentileMidpointsAndFallback) {
  uint64_t Buckets[8] = {};
  EXPECT_EQ(stats::log2BucketPercentile(Buckets, 8, 0, 0.5, 999), 0u);

  // Samples 1, 2, 4, 8 -> buckets 0..3, one each.
  Buckets[0] = Buckets[1] = Buckets[2] = Buckets[3] = 1;
  // p25 -> rank 1 -> bucket 0, midpoint 1 + 0 = 1.
  EXPECT_EQ(stats::log2BucketPercentile(Buckets, 8, 4, 0.25, 999), 1u);
  // p50 -> rank 2 -> bucket 1 ([2,4)), midpoint 3.
  EXPECT_EQ(stats::log2BucketPercentile(Buckets, 8, 4, 0.5, 999), 3u);
  // p75 -> rank 3 -> bucket 2 ([4,8)), midpoint 6.
  EXPECT_EQ(stats::log2BucketPercentile(Buckets, 8, 4, 0.75, 999), 6u);
  // p100 -> rank 4 -> bucket 3 ([8,16)), midpoint 12.
  EXPECT_EQ(stats::log2BucketPercentile(Buckets, 8, 4, 1.0, 999), 12u);
  // Q clamps: below 0 reads as the minimum rank, above 1 as the maximum.
  EXPECT_EQ(stats::log2BucketPercentile(Buckets, 8, 4, -3.0, 999), 1u);
  EXPECT_EQ(stats::log2BucketPercentile(Buckets, 8, 4, 7.0, 999), 12u);

  // A count larger than the populated buckets (samples clamped into the
  // last bucket of a *wider* source, or a racy snapshot) falls back.
  EXPECT_EQ(stats::log2BucketPercentile(Buckets, 8, 10, 1.0, 999), 999u);
}

TEST(Log2Buckets, PercentileLabels) {
  EXPECT_EQ(stats::percentileLabel(0.5), "p50");
  EXPECT_EQ(stats::percentileLabel(0.95), "p95");
  EXPECT_EQ(stats::percentileLabel(0.99), "p99");
  EXPECT_EQ(stats::percentileLabel(0.999), "p99.9");
  EXPECT_EQ(stats::percentileLabel(0.25), "p25");
  EXPECT_EQ(stats::percentileLabel(0.0), "p0");
  EXPECT_EQ(stats::percentileLabel(1.0), "p100");
  EXPECT_EQ(stats::percentileLabel(2.0), "p100"); // clamped
}

TEST(Log2Buckets, HistogramMatchesHelpers) {
  fleet::Histogram H;
  for (uint64_t V : {uint64_t(0), uint64_t(1), uint64_t(2), uint64_t(1000),
                     UINT64_MAX})
    H.add(V);
  EXPECT_EQ(H.count(), 5u);
  EXPECT_EQ(H.maxValue(), UINT64_MAX);
  EXPECT_EQ(H.bucket(0), 2u); // 0 and 1
  EXPECT_EQ(H.bucket(1), 1u); // 2
  EXPECT_EQ(H.bucket(stats::log2BucketIndex(1000, fleet::Histogram::NumBuckets)),
            1u);
  EXPECT_EQ(H.bucket(fleet::Histogram::NumBuckets - 1), 1u); // clamped max
  // p20 -> rank 1 -> bucket 0 midpoint.
  EXPECT_EQ(H.percentile(0.2), 1u);
}

TEST(Log2Buckets, RegistryDumpPercentilesConfigurable) {
  stats::Registry R;
  stats::Timer &T = R.timer("unit.test_ns");
  for (uint64_t Ns : {64ull, 96ull, 128ull, 4096ull})
    T.record(Ns);
  R.setDumpPercentiles({0.5, 0.999, 0.999 /* dup label dropped */, 2.0});
  ASSERT_EQ(R.dumpPercentiles().size(), 3u); // 0.5, 0.999, clamped 1.0
  std::ostringstream OS;
  R.dumpJson(OS);
  std::string J = OS.str();
  EXPECT_NE(J.find("\"p50_ns\""), std::string::npos) << J;
  EXPECT_NE(J.find("\"p99.9_ns\""), std::string::npos) << J;
  EXPECT_NE(J.find("\"p100_ns\""), std::string::npos) << J;
  EXPECT_EQ(J.find("\"p95_ns\""), std::string::npos) << J;
}

//===----------------------------------------------------------------------===//
// Aggregator determinism
//===----------------------------------------------------------------------===//

fleet::JobEvent makeEvent(uint64_t I) {
  fleet::JobEvent E;
  E.Index = I;
  E.Name = "job" + std::to_string(I);
  E.Hash = fleet::hex16(fleet::fnv1a64(E.Name));
  E.Preset = I % 2 ? "gen" : "examples";
  E.Status = I % 5 == 3 ? "rolled_back" : "ok";
  E.WallNs = 1000 * (I + 1); // must NOT influence the aggregate
  E.Rollbacks = I % 5 == 3 ? 1 : 0;
  E.BlocksBefore = 10 + I;
  E.BlocksAfter = 12 + I;
  E.InstrsBefore = 100 + 7 * I;
  E.InstrsAfter = 90 + 7 * I;
  E.Phases.emplace_back("pipeline", 500 * (I + 1));
  E.Counters.emplace_back("am.rounds", 2 + I % 3);
  E.Counters.emplace_back("dfa.sweeps", 40 + 13 * I);
  if (I % 2)
    E.Counters.emplace_back("pipeline.rollbacks", 1);
  E.RemarkKinds.emplace_back("hoist", 3 + I);
  return E;
}

std::string aggJson(const fleet::Aggregate &A) {
  std::ostringstream OS;
  A.writeJson(OS);
  return OS.str();
}

TEST(Aggregate, SkippedLinesSerializeAndMerge) {
  fleet::Aggregate A;
  A.addJob(makeEvent(0));
  EXPECT_EQ(A.skippedLines(), 0u);
  EXPECT_NE(aggJson(A).find("\"skipped_lines\":0"), std::string::npos);

  A.noteSkippedLines(2);
  A.noteSkippedLines(1);
  EXPECT_EQ(A.skippedLines(), 3u);
  EXPECT_NE(aggJson(A).find("\"skipped_lines\":3"), std::string::npos);

  // merge() sums data loss like it sums jobs.
  fleet::Aggregate B;
  B.addJob(makeEvent(1));
  B.noteSkippedLines(4);
  A.merge(B);
  EXPECT_EQ(A.skippedLines(), 7u);
}

TEST(Aggregate, InsertionOrderInvariant) {
  std::vector<fleet::JobEvent> Events;
  for (uint64_t I = 0; I < 16; ++I)
    Events.push_back(makeEvent(I));

  fleet::Aggregate InOrder;
  for (const fleet::JobEvent &E : Events)
    InOrder.addJob(E);
  const std::string Golden = aggJson(InOrder);
  EXPECT_NE(Golden.find("\"schema\":\"amagg-v1\""), std::string::npos);
  EXPECT_NE(Golden.find("\"jobs\":16"), std::string::npos);

  // Any completion order folds to the same bytes.
  std::vector<size_t> Perm(Events.size());
  std::iota(Perm.begin(), Perm.end(), 0);
  std::mt19937 Rng(7);
  for (int Round = 0; Round < 5; ++Round) {
    std::shuffle(Perm.begin(), Perm.end(), Rng);
    fleet::Aggregate Shuffled;
    for (size_t I : Perm)
      Shuffled.addJob(Events[I]);
    EXPECT_EQ(aggJson(Shuffled), Golden) << "round " << Round;
  }
}

TEST(Aggregate, MergePartitioningInvariant) {
  std::vector<fleet::JobEvent> Events;
  for (uint64_t I = 0; I < 16; ++I)
    Events.push_back(makeEvent(I));
  fleet::Aggregate InOrder;
  for (const fleet::JobEvent &E : Events)
    InOrder.addJob(E);
  const std::string Golden = aggJson(InOrder);

  // One aggregate per job, merged at the barrier (what ambatch would do
  // with per-worker partials): 16 singletons, merged in index order.
  fleet::Aggregate Merged;
  for (const fleet::JobEvent &E : Events) {
    fleet::Aggregate One;
    One.addJob(E);
    Merged.merge(One);
  }
  EXPECT_EQ(aggJson(Merged), Golden);

  // Uneven halves, merged out of order.
  fleet::Aggregate Front, Back;
  for (uint64_t I = 0; I < 5; ++I)
    Front.addJob(Events[I]);
  for (uint64_t I = 5; I < 16; ++I)
    Back.addJob(Events[I]);
  fleet::Aggregate BackFirst;
  BackFirst.merge(Back);
  BackFirst.merge(Front);
  EXPECT_EQ(aggJson(BackFirst), Golden);
}

TEST(Aggregate, WallTimesExcluded) {
  // Two runs of the same corpus with wildly different wall clocks and
  // phase times must aggregate to identical bytes.
  fleet::Aggregate A, B;
  for (uint64_t I = 0; I < 8; ++I) {
    fleet::JobEvent E = makeEvent(I);
    A.addJob(E);
    E.WallNs *= 1000;
    for (auto &P : E.Phases)
      P.second += 123456;
    B.addJob(E);
  }
  EXPECT_EQ(aggJson(A), aggJson(B));
  EXPECT_EQ(aggJson(A).find("wall"), std::string::npos);
}

TEST(Aggregate, StatsAndSynthesizedMetrics) {
  fleet::Aggregate Agg;
  for (uint64_t I = 0; I < 4; ++I)
    Agg.addJob(makeEvent(I));
  EXPECT_EQ(Agg.jobs(), 4u);
  EXPECT_EQ(Agg.statuses().at("ok"), 3u);
  EXPECT_EQ(Agg.statuses().at("rolled_back"), 1u);
  EXPECT_EQ(Agg.remarkKinds().at("hoist"), 3 + 4 + 5 + 6u);

  const fleet::MetricAgg &Sweeps = Agg.counters().at("dfa.sweeps");
  EXPECT_EQ(Sweeps.Jobs, 4u);
  EXPECT_EQ(Sweeps.Sum, 40u + 53 + 66 + 79);
  EXPECT_EQ(Sweeps.Min, 40u);
  EXPECT_EQ(Sweeps.Max, 79u);
  EXPECT_DOUBLE_EQ(Sweeps.mean(), (40.0 + 53 + 66 + 79) / 4);

  // pipeline.rollbacks only appears in odd jobs; Jobs tracks reporters.
  EXPECT_EQ(Agg.counters().at("pipeline.rollbacks").Jobs, 2u);

  // IR sizes are synthesized as counters so the diff can rank them.
  EXPECT_EQ(Agg.counters().at("ir.instrs_before").Sum, 100u + 107 + 114 + 121);
  EXPECT_EQ(Agg.counters().at("ir.blocks_after").Min, 12u);
}

//===----------------------------------------------------------------------===//
// Event log round trip and truncation recovery
//===----------------------------------------------------------------------===//

std::string writeLog(const std::vector<fleet::JobEvent> &Events) {
  std::ostringstream OS;
  fleet::EventLogWriter W(OS);
  W.writeHeader("uniform,pde", Events.size());
  for (const fleet::JobEvent &E : Events)
    W.append(E);
  return OS.str();
}

TEST(EventLog, RoundTrip) {
  std::vector<fleet::JobEvent> Events;
  for (uint64_t I = 0; I < 3; ++I)
    Events.push_back(makeEvent(I));
  Events[1].Status = "error";
  Events[1].Error = "parse error: line 3: unexpected '}'";

  std::istringstream In(writeLog(Events));
  fleet::EventLogFile File;
  ASSERT_TRUE(fleet::readEventLog(In, File));
  EXPECT_EQ(File.Schema, "amevents-v1");
  EXPECT_EQ(File.Passes, "uniform,pde");
  EXPECT_EQ(File.JobsDeclared, 3u);
  EXPECT_EQ(File.SkippedLines, 0u);
  ASSERT_EQ(File.Events.size(), 3u);

  const fleet::JobEvent &E = File.Events[2];
  EXPECT_EQ(E.Index, 2u);
  EXPECT_EQ(E.Name, "job2");
  EXPECT_EQ(E.Hash, fleet::hex16(fleet::fnv1a64("job2")));
  EXPECT_EQ(E.Preset, "examples");
  EXPECT_EQ(E.Status, "ok");
  EXPECT_EQ(E.WallNs, 3000u);
  EXPECT_EQ(E.InstrsBefore, 114u);
  EXPECT_EQ(E.InstrsAfter, 104u);
  ASSERT_EQ(E.Phases.size(), 1u);
  EXPECT_EQ(E.Phases[0].first, "pipeline");
  EXPECT_EQ(E.Phases[0].second, 1500u);
  ASSERT_EQ(E.Counters.size(), 2u);
  EXPECT_EQ(E.Counters[1].first, "dfa.sweeps");
  EXPECT_EQ(E.Counters[1].second, 66u);
  EXPECT_EQ(File.Events[1].Error, "parse error: line 3: unexpected '}'");
}

TEST(EventLog, HashIsStableFnv1a) {
  // Pinned reference value: the identity hash must never drift between
  // writers and readers on different machines.
  EXPECT_EQ(fleet::fnv1a64(""), 14695981039346656037ull);
  EXPECT_EQ(fleet::hex16(fleet::fnv1a64("")), "cbf29ce484222325");
  EXPECT_NE(fleet::fnv1a64("a"), fleet::fnv1a64("b"));
  EXPECT_EQ(fleet::hex16(0), "0000000000000000");
}

TEST(EventLog, TruncatedFinalLineIsSkippedWithWarning) {
  std::vector<fleet::JobEvent> Events;
  for (uint64_t I = 0; I < 3; ++I)
    Events.push_back(makeEvent(I));
  std::string Full = writeLog(Events);

  // Kill the run mid-record: drop the trailing newline and a chunk of
  // the final record.
  std::istringstream In(Full.substr(0, Full.size() - 9));
  fleet::EventLogFile File;
  ASSERT_TRUE(fleet::readEventLog(In, File));
  EXPECT_EQ(File.Events.size(), 2u);
  EXPECT_EQ(File.SkippedLines, 1u);
  ASSERT_EQ(File.Warnings.size(), 1u);
  EXPECT_NE(File.Warnings[0].find("partial trailing"), std::string::npos)
      << File.Warnings[0];
}

TEST(EventLog, MalformedInteriorLineIsSkippedWithWarning) {
  std::vector<fleet::JobEvent> Events;
  for (uint64_t I = 0; I < 3; ++I)
    Events.push_back(makeEvent(I));
  std::string Full = writeLog(Events);
  size_t FirstNl = Full.find('\n');
  size_t SecondNl = Full.find('\n', FirstNl + 1);
  std::string Broken = Full.substr(0, SecondNl + 1) + "{\"not\": json!!\n" +
                       Full.substr(SecondNl + 1);

  std::istringstream In(Broken);
  fleet::EventLogFile File;
  ASSERT_TRUE(fleet::readEventLog(In, File));
  EXPECT_EQ(File.Events.size(), 3u); // everything real survives
  EXPECT_EQ(File.SkippedLines, 1u);
  ASSERT_EQ(File.Warnings.size(), 1u);
  EXPECT_NE(File.Warnings[0].find("malformed"), std::string::npos);
}

TEST(EventLog, MissingOrForeignHeaderIsAnError) {
  fleet::EventLogFile File;
  std::istringstream NoHeader("{\"index\":0,\"status\":\"ok\"}\n");
  EXPECT_FALSE(fleet::readEventLog(NoHeader, File));

  std::istringstream Foreign(
      "{\"schema\":\"amprof-v1\",\"passes\":\"uniform\",\"jobs\":1}\n");
  fleet::EventLogFile File2;
  EXPECT_FALSE(fleet::readEventLog(Foreign, File2));
}

//===----------------------------------------------------------------------===//
// Corpus diff
//===----------------------------------------------------------------------===//

TEST(Diff, RanksByRelativeMagnitude) {
  fleet::Aggregate A, B;
  for (uint64_t I = 0; I < 4; ++I) {
    fleet::JobEvent E = makeEvent(I);
    E.Counters = {{"flat", 100}, {"doubles", 50}, {"gone", 7}};
    A.addJob(E);
    fleet::JobEvent F = makeEvent(I);
    F.Counters = {{"flat", 100}, {"doubles", 100}, {"fresh", 3}};
    B.addJob(F);
  }
  std::vector<fleet::DiffRow> Rows = fleet::diffAggregates(A, B);

  auto Find = [&](const std::string &Name) -> const fleet::DiffRow & {
    for (const fleet::DiffRow &R : Rows)
      if (R.Counter == Name)
        return R;
    static fleet::DiffRow None;
    return None;
  };
  EXPECT_DOUBLE_EQ(Find("flat").Delta, 0.0);
  EXPECT_DOUBLE_EQ(Find("doubles").RelDelta, 1.0);
  EXPECT_GE(Find("fresh").RelDelta, 1e9);        // appeared from nothing
  EXPECT_DOUBLE_EQ(Find("gone").RelDelta, -1.0); // dropped to zero

  // "fresh" (infinite relative change) outranks everything; "doubles"
  // and "gone" tie at |1.0| and break by name; "flat" ranks last.
  std::vector<std::string> Order;
  for (const fleet::DiffRow &R : Rows)
    if (R.Counter == "flat" || R.Counter == "doubles" ||
        R.Counter == "fresh" || R.Counter == "gone")
      Order.push_back(R.Counter);
  ASSERT_EQ(Order.size(), 4u);
  EXPECT_EQ(Order[0], "fresh");
  EXPECT_EQ(Order[1], "doubles");
  EXPECT_EQ(Order[2], "gone");
  EXPECT_EQ(Order[3], "flat");
}

} // namespace
