//===- tests/profiler_disabled_helper.cpp - Compiled-out prof TU -*- C++ -*-=//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
//
// This translation unit is compiled with -DAM_DISABLE_STATS (see
// tests/CMakeLists.txt): AM_PROF_SCOPE must expand to nothing, so the
// scopes below can never create phase-tree nodes — even when the calling
// test has *enabled* the session's profiler.  profiler_test.cpp asserts
// exactly that.
//
//===----------------------------------------------------------------------===//

#ifndef AM_DISABLE_STATS
#error "this file must be compiled with -DAM_DISABLE_STATS"
#endif

#include "support/Profiler.h"

namespace am::test {

/// Runs nested compiled-out profiler scopes; returns how many phase-tree
/// nodes the session profiler gained (must be 0).
size_t profileCompiledOutScopes() {
  prof::Profiler &P = prof::Profiler::get();
  size_t Before = P.numNodes();
  {
    AM_PROF_SCOPE("test.compiled_out_phase");
    {
      AM_PROF_SCOPE("test.compiled_out_inner");
    }
  }
  return P.numNodes() - Before;
}

} // namespace am::test
