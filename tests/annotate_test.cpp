//===- tests/annotate_test.cpp - Annotation facility tests -----*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "analysis/Annotate.h"

#include <gtest/gtest.h>

using namespace am;
using namespace am::test;

TEST(Annotate, RedundancyMarksRedundantOccurrences) {
  FlowGraph G = parse(R"(
graph {
b0:
  x := a + b
  y := 1
  x := a + b
  out(x, y)
  halt
}
)");
  std::string S = annotate(G, AnnotationKind::Redundancy);
  EXPECT_NE(S.find(";; REDUNDANT"), std::string::npos);
  EXPECT_NE(S.find("redundant here: x := a + b"), std::string::npos);
  // The first occurrence is not redundant: exactly one mark.
  EXPECT_EQ(S.find(";; REDUNDANT"), S.rfind(";; REDUNDANT"));
}

TEST(Annotate, HoistabilityShowsCandidatesAndInserts) {
  FlowGraph G = parse(R"(
graph {
b0:
  c := 1
  x := a + b
  out(x, c)
  halt
}
)");
  std::string S = annotate(G, AnnotationKind::Hoistability);
  EXPECT_NE(S.find("x := a + b    ;; CANDIDATE"), std::string::npos);
  EXPECT_NE(S.find("N-INSERT"), std::string::npos);
  EXPECT_NE(S.find("N-HOISTABLE: c := 1, x := a + b"), std::string::npos);
}

TEST(Annotate, FlushShowsDelayAndReconstruction) {
  FlowGraph G = parse(R"(
graph {
temp h1
b0:
  h1 := a + b
  c := 1
  x := h1
  out(x, c)
  halt
}
)");
  std::string S = annotate(G, AnnotationKind::Flush);
  EXPECT_NE(S.find("temporaries: h1 := a + b"), std::string::npos);
  EXPECT_NE(S.find(";; RECONSTRUCT h1"), std::string::npos);
  EXPECT_NE(S.find("delayable: h1"), std::string::npos);
}

TEST(Annotate, LivenessListsLiveVariables) {
  FlowGraph G = parse(R"(
graph {
b0:
  x := 1
  out(x)
  halt
}
)");
  std::string S = annotate(G, AnnotationKind::Liveness);
  EXPECT_NE(S.find("out(x)\n    ;; live: x"), std::string::npos);
  EXPECT_NE(S.find("live-out: -"), std::string::npos);
}

TEST(Annotate, KindParsing) {
  AnnotationKind K;
  EXPECT_TRUE(parseAnnotationKind("redundancy", K));
  EXPECT_EQ(K, AnnotationKind::Redundancy);
  EXPECT_TRUE(parseAnnotationKind("hoist", K));
  EXPECT_EQ(K, AnnotationKind::Hoistability);
  EXPECT_TRUE(parseAnnotationKind("flush", K));
  EXPECT_EQ(K, AnnotationKind::Flush);
  EXPECT_TRUE(parseAnnotationKind("live", K));
  EXPECT_EQ(K, AnnotationKind::Liveness);
  EXPECT_FALSE(parseAnnotationKind("bogus", K));
}
