//===- tests/thread_pool_test.cpp - Pool + determinism tests ---*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
//
// The worker pool itself (futures, exception propagation, the N=1 inline
// collapse, partitioning) and the determinism contract of the parallel
// solves: for every thread count and either solver layout, the optimized
// program is byte-identical and the machine-independent counters agree.
//
//===----------------------------------------------------------------------===//

#include "dfa/Dataflow.h"
#include "gen/RandomProgram.h"
#include "ir/Printer.h"
#include "support/Stats.h"
#include "support/ThreadPool.h"
#include "transform/UniformEmAm.h"

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <stdexcept>
#include <thread>
#include <vector>

using namespace am;

namespace {

/// Restores the process thread count and solver layout on scope exit so a
/// failing test cannot poison its neighbors.
struct PolicyGuard {
  ~PolicyGuard() {
    threads::setGlobalThreadCount(0);
    setSolverLayout(SolverLayout::Auto);
  }
};

//===----------------------------------------------------------------------===//
// parseThreadSpec / global thread count
//===----------------------------------------------------------------------===//

TEST(ThreadSpec, ParsesDecimalsAndMax) {
  EXPECT_EQ(threads::parseThreadSpec("1"), 1u);
  EXPECT_EQ(threads::parseThreadSpec("8"), 8u);
  EXPECT_EQ(threads::parseThreadSpec("4096"), 4096u);
  EXPECT_EQ(threads::parseThreadSpec("max"), threads::hardwareConcurrency());
  EXPECT_GE(threads::hardwareConcurrency(), 1u);
}

TEST(ThreadSpec, RejectsBadInput) {
  for (const char *Bad : {"", "0", "abc", "4097", "-1", "2x", "max4"}) {
    std::string Err;
    EXPECT_EQ(threads::parseThreadSpec(Bad, &Err), 0u) << Bad;
    EXPECT_FALSE(Err.empty()) << Bad;
  }
}

TEST(ThreadSpec, GlobalCountOverrideAndRestore) {
  PolicyGuard Guard;
  unsigned Default = threads::globalThreadCount();
  threads::setGlobalThreadCount(7);
  EXPECT_EQ(threads::globalThreadCount(), 7u);
  threads::setGlobalThreadCount(0); // back to env/default resolution
  EXPECT_EQ(threads::globalThreadCount(), Default);
}

//===----------------------------------------------------------------------===//
// ThreadPool
//===----------------------------------------------------------------------===//

TEST(ThreadPool, SingleWorkerRunsInline) {
  threads::ThreadPool Pool(1);
  EXPECT_EQ(Pool.workers(), 1u);
  std::thread::id Caller = std::this_thread::get_id();
  std::thread::id Ran;
  Pool.submit([&] { Ran = std::this_thread::get_id(); }).get();
  EXPECT_EQ(Ran, Caller);
}

TEST(ThreadPool, SubmitCompletesOnWorkers) {
  threads::ThreadPool Pool(4);
  std::atomic<int> Done{0};
  std::vector<std::future<void>> Futures;
  for (int I = 0; I < 32; ++I)
    Futures.push_back(Pool.submit([&Done] { ++Done; }));
  for (auto &F : Futures)
    F.get();
  EXPECT_EQ(Done.load(), 32);
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture) {
  for (unsigned Workers : {1u, 4u}) {
    threads::ThreadPool Pool(Workers);
    std::future<void> F =
        Pool.submit([] { throw std::runtime_error("task boom"); });
    EXPECT_THROW(F.get(), std::runtime_error) << Workers << " workers";
  }
}

// The service regression (PR 10): two workers throwing *simultaneously*
// must each deliver their own exception through their own future, with no
// deadlock, no lost worker, and every job queued behind them still
// running.  (A pool that loses a worker to an unhandled exception would
// hang amserved the first time two requests failed together.)
TEST(ThreadPool, ConcurrentFailuresBothPropagateAndPoolSurvives) {
  threads::ThreadPool Pool(2);
  std::atomic<int> AtBarrier{0};
  auto Thrower = [&AtBarrier](const char *What) {
    // Rendezvous: neither worker throws until both are inside a task, so
    // the two failures are genuinely concurrent.
    ++AtBarrier;
    while (AtBarrier.load() < 2)
      std::this_thread::yield();
    throw std::runtime_error(What);
  };
  std::future<void> A = Pool.submit([&] { Thrower("first boom"); });
  std::future<void> B = Pool.submit([&] { Thrower("second boom"); });

  // Jobs queued behind the simultaneous failures must still run.
  std::atomic<int> Survivors{0};
  std::vector<std::future<void>> After;
  for (int I = 0; I < 8; ++I)
    After.push_back(Pool.submit([&Survivors] { ++Survivors; }));

  // Each future carries its *own* exception, not the neighbor's.
  try {
    A.get();
    FAIL() << "first task's exception was lost";
  } catch (const std::runtime_error &E) {
    EXPECT_STREQ(E.what(), "first boom");
  }
  try {
    B.get();
    FAIL() << "second task's exception was lost";
  } catch (const std::runtime_error &E) {
    EXPECT_STREQ(E.what(), "second boom");
  }
  for (auto &F : After)
    F.get(); // would deadlock here if a worker died
  EXPECT_EQ(Survivors.load(), 8);
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  for (unsigned Workers : {1u, 3u, 8u}) {
    threads::ThreadPool Pool(Workers);
    for (size_t N : {size_t(0), size_t(1), size_t(5), size_t(100)}) {
      std::vector<std::atomic<int>> Hits(N);
      for (auto &H : Hits)
        H = 0;
      Pool.parallelFor(N, [&Hits](size_t I) { ++Hits[I]; });
      for (size_t I = 0; I < N; ++I)
        EXPECT_EQ(Hits[I].load(), 1)
            << "index " << I << " of " << N << ", " << Workers << " workers";
    }
  }
}

TEST(ThreadPool, ParallelRangesPartitionIsContiguousAndComplete) {
  threads::ThreadPool Pool(4);
  std::mutex M;
  std::vector<std::pair<size_t, size_t>> Ranges;
  Pool.parallelRanges(10, [&](size_t Begin, size_t End) {
    std::lock_guard<std::mutex> Lock(M);
    Ranges.push_back({Begin, End});
  });
  ASSERT_EQ(Ranges.size(), 4u); // min(workers, N) partitions
  std::sort(Ranges.begin(), Ranges.end());
  size_t Next = 0;
  for (auto &R : Ranges) {
    EXPECT_EQ(R.first, Next);
    EXPECT_LT(R.first, R.second);
    Next = R.second;
  }
  EXPECT_EQ(Next, 10u);
}

TEST(ThreadPool, ParallelForRethrowsAfterJoin) {
  threads::ThreadPool Pool(4);
  std::atomic<int> Ran{0};
  EXPECT_THROW(Pool.parallelFor(16,
                                [&Ran](size_t I) {
                                  ++Ran;
                                  if (I == 3)
                                    throw std::runtime_error("body boom");
                                }),
               std::runtime_error);
  // All ranges joined before the rethrow: every index ran.
  EXPECT_EQ(Ran.load(), 16);
}

//===----------------------------------------------------------------------===//
// Differential determinism sweep
//===----------------------------------------------------------------------===//

/// The counters that must be invariant across thread counts (all of the
/// bench gate's counters, including the substrate-dependent dfa.* work
/// counters: thread count never changes which substrate runs or how much
/// work it reports).
const char *AllGated[] = {
    "dfa.solves",          "dfa.sweeps",         "dfa.blocks_processed",
    "dfa.words_touched",   "dfa.transfers_recomputed",
    "am.rounds",           "am.hoist_rounds",    "am.eliminated",
    "flush.inits_deleted", "flush.inits_sunk",
};

/// The subset that must also be invariant across solver *layouts*: the
/// algorithm-level counters.  (dfa.blocks_processed counts slice-block
/// evaluations on the transposed substrate, whole-block evaluations on
/// the scalar one, so it and words_touched legitimately differ.)
const char *LayoutInvariant[] = {
    "dfa.solves", "am.rounds",           "am.hoist_rounds",
    "am.eliminated", "flush.inits_deleted", "flush.inits_sunk",
};

template <size_t N>
std::map<std::string, uint64_t> counterSnapshot(const char *(&Names)[N]) {
  std::map<std::string, uint64_t> Out;
  for (const char *Name : Names) {
    const stats::Counter *C = stats::Registry::get().findCounter(Name);
    Out[Name] = C ? C->get() : 0;
  }
  return Out;
}

std::string runUniform(const FlowGraph &In) {
  FlowGraph Work = In;
  return printGraph(runUniformEmAm(Work));
}

TEST(ThreadsDifferential, CorpusIdenticalAcrossThreadCounts) {
  PolicyGuard Guard;
  for (uint64_t Seed = 0; Seed < 120; ++Seed) {
    FlowGraph In = generateStructuredProgram(Seed);
    std::string Reference;
    std::map<std::string, uint64_t> ReferenceCounters;
    for (unsigned Threads : {1u, 2u, 8u}) {
      threads::setGlobalThreadCount(Threads);
      stats::Registry::get().resetAll();
      std::string Out = runUniform(In);
      std::map<std::string, uint64_t> Counters = counterSnapshot(AllGated);
      if (Threads == 1) {
        Reference = Out;
        ReferenceCounters = Counters;
      } else {
        EXPECT_EQ(Out, Reference) << "seed " << Seed << ", " << Threads
                                  << " threads: output diverged";
        EXPECT_EQ(Counters, ReferenceCounters)
            << "seed " << Seed << ", " << Threads << " threads";
      }
    }
  }
}

TEST(ThreadsDifferential, WideUniverseIdenticalAcrossLayoutsAndThreads) {
  PolicyGuard Guard;
  // A pattern universe wider than one machine word, so Auto (and forced
  // Transposed) actually slice; 20 seeds keep the sweep fast.
  GenOptions Opts;
  Opts.TargetStmts = 200;
  Opts.NumVars = 12;
  Opts.PatternPoolSize = 96;
  for (uint64_t Seed = 0; Seed < 20; ++Seed) {
    FlowGraph In = generateStructuredProgram(Seed, Opts);
    std::string Reference;
    std::map<std::string, uint64_t> ReferenceCounters;
    bool First = true;
    for (SolverLayout Layout : {SolverLayout::Scalar, SolverLayout::Transposed}) {
      for (unsigned Threads : {1u, 8u}) {
        setSolverLayout(Layout);
        threads::setGlobalThreadCount(Threads);
        stats::Registry::get().resetAll();
        std::string Out = runUniform(In);
        std::map<std::string, uint64_t> Counters =
            counterSnapshot(LayoutInvariant);
        if (First) {
          Reference = Out;
          ReferenceCounters = Counters;
          First = false;
        } else {
          EXPECT_EQ(Out, Reference)
              << "seed " << Seed << ", layout "
              << (Layout == SolverLayout::Scalar ? "scalar" : "transposed")
              << ", " << Threads << " threads: output diverged";
          EXPECT_EQ(Counters, ReferenceCounters)
              << "seed " << Seed << ", " << Threads << " threads";
        }
      }
    }
  }
}

TEST(ThreadsDifferential, ForcedTransposedHandlesNarrowUniverses) {
  PolicyGuard Guard;
  // Narrow problems (<= 64 patterns, one slice) through the sliced
  // engine must match the scalar fixpoint too.
  setSolverLayout(SolverLayout::Transposed);
  for (uint64_t Seed = 0; Seed < 30; ++Seed) {
    FlowGraph In = generateStructuredProgram(Seed);
    std::string Forced = runUniform(In);
    setSolverLayout(SolverLayout::Scalar);
    std::string Ref = runUniform(In);
    setSolverLayout(SolverLayout::Transposed);
    EXPECT_EQ(Forced, Ref) << "seed " << Seed;
  }
}

} // namespace
