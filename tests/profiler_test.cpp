//===- tests/profiler_test.cpp - Self-profiler tests -----------*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
//
// The hierarchical self-profiler (support/Profiler.h): phase-tree
// construction, determinism of the tree shape across runs, zero cost when
// disabled or compiled out, tolerance of unbalanced instrumentation, and
// the JSON / collapsed-stack renderings.
//
//===----------------------------------------------------------------------===//

#include "figures/PaperFigures.h"
#include "ir/Printer.h"
#include "support/Json.h"
#include "support/Profiler.h"
#include "support/Stats.h"
#include "support/Telemetry.h"
#include "transform/UniformEmAm.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace am;

namespace am::test {
size_t profileCompiledOutScopes(); // profiler_disabled_helper.cpp
} // namespace am::test

namespace {

/// A fresh session with its profiler switched on, installed for the
/// test's duration.
struct ProfiledSession {
  telemetry::Session S;
  telemetry::SessionScope Scope;
  ProfiledSession() : Scope(S) { S.profiler().setEnabled(true); }
  prof::Profiler &prof() { return S.profiler(); }
};

TEST(ProfilerTest, DisabledByDefaultCreatesNoNodes) {
  telemetry::Session S;
  telemetry::SessionScope Scope(S);
  {
    AM_PROF_SCOPE("never");
  }
  EXPECT_EQ(S.profiler().numNodes(), 1u); // just the root
  EXPECT_EQ(S.profiler().treeShape(), "root");
}

TEST(ProfilerTest, BuildsTheTreeInFirstEntryOrder) {
  ProfiledSession P;
  for (int I = 0; I < 2; ++I) {
    AM_PROF_SCOPE("outer");
    {
      AM_PROF_SCOPE("first");
    }
    {
      AM_PROF_SCOPE("second");
    }
  }
  {
    AM_PROF_SCOPE("tail");
  }
  EXPECT_EQ(P.prof().treeShape(),
            "root{outer(2){first(2),second(2)},tail(1)}");
}

TEST(ProfilerTest, SameNameUnderDifferentParentsIsDifferentNodes) {
  ProfiledSession P;
  {
    AM_PROF_SCOPE("a");
    AM_PROF_SCOPE("solve");
  }
  {
    AM_PROF_SCOPE("b");
    AM_PROF_SCOPE("solve");
  }
  EXPECT_EQ(P.prof().treeShape(), "root{a(1){solve(1)},b(1){solve(1)}}");
  EXPECT_EQ(P.prof().numNodes(), 5u);
}

TEST(ProfilerTest, AccumulatesWallTimeAndCalls) {
  ProfiledSession P;
  for (int I = 0; I < 3; ++I) {
    AM_PROF_SCOPE("work");
    // Touch the heap so the allocation delta is visibly attributed.
    std::vector<int> V(1024, I);
    ASSERT_EQ(V.size(), 1024u);
  }
  ASSERT_EQ(P.prof().numNodes(), 2u);
  const prof::Profiler::Node &N = P.prof().node(1);
  EXPECT_EQ(N.Name, "work");
  EXPECT_EQ(N.Calls, 3u);
  EXPECT_GT(N.WallNs, 0u);
  if (prof::allocTrackingAvailable()) {
    EXPECT_GE(N.AllocBytes, 3 * 1024 * sizeof(int));
    EXPECT_GE(N.AllocCalls, 3u);
  }
  EXPECT_GE(N.LastEndUs, N.FirstStartUs);
}

TEST(ProfilerTest, UnbalancedLeaveIsIgnored) {
  ProfiledSession P;
  P.prof().leave(); // no matching enter
  P.prof().leave();
  EXPECT_EQ(P.prof().depth(), 0u);
  {
    AM_PROF_SCOPE("ok");
  }
  P.prof().leave(); // unbalanced again, after real traffic
  EXPECT_EQ(P.prof().treeShape(), "root{ok(1)}");
}

TEST(ProfilerTest, DanglingEnterSurvivesReset) {
  ProfiledSession P;
  P.prof().enter("left_open");
  EXPECT_EQ(P.prof().depth(), 1u);
  P.prof().reset();
  EXPECT_EQ(P.prof().depth(), 0u);
  EXPECT_EQ(P.prof().numNodes(), 1u);
  EXPECT_EQ(P.prof().treeShape(), "root");
}

TEST(ProfilerTest, ScopeCapturesProfilerAtEntry) {
  // Disabling mid-scope must not unbalance the stack: Scope latched the
  // enabled decision at construction.
  ProfiledSession P;
  {
    AM_PROF_SCOPE("latch");
    P.prof().setEnabled(false);
  }
  EXPECT_EQ(P.prof().depth(), 0u);
  EXPECT_EQ(P.prof().node(1).Calls, 1u);
}

TEST(ProfilerTest, TreeShapeIsDeterministicAcrossRuns) {
  // The acceptance bar: profiling the same optimization twice (fresh
  // session each time) yields byte-identical tree shapes, and the
  // optimized program is byte-identical with profiling on or off.
  FlowGraph Input = figure4();
  auto RunProfiled = [&](std::string &Shape) {
    telemetry::Session S;
    telemetry::SessionScope Scope(S);
    S.profiler().setEnabled(true);
    FlowGraph Out = runUniformEmAm(Input);
    Shape = S.profiler().treeShape();
    return Out;
  };
  std::string ShapeA, ShapeB;
  FlowGraph OutA = RunProfiled(ShapeA);
  FlowGraph OutB = RunProfiled(ShapeB);
  EXPECT_EQ(ShapeA, ShapeB);
  EXPECT_NE(ShapeA.find("uniform"), std::string::npos) << ShapeA;
  EXPECT_NE(ShapeA.find("init"), std::string::npos) << ShapeA;
  EXPECT_NE(ShapeA.find("rae"), std::string::npos) << ShapeA;
  EXPECT_NE(ShapeA.find("aht"), std::string::npos) << ShapeA;
  EXPECT_NE(ShapeA.find("flush"), std::string::npos) << ShapeA;
  EXPECT_NE(ShapeA.find("dfa.solve"), std::string::npos) << ShapeA;

  // Profiling never perturbs the optimization itself.
  telemetry::Session Plain;
  telemetry::SessionScope PlainScope(Plain);
  FlowGraph OutPlain = runUniformEmAm(Input);
  EXPECT_EQ(printGraph(OutA), printGraph(OutPlain));
  EXPECT_EQ(printGraph(OutA), printGraph(OutB));
}

TEST(ProfilerTest, CompiledOutScopesCreateNothingEvenWhenEnabled) {
  ProfiledSession P;
  EXPECT_EQ(am::test::profileCompiledOutScopes(), 0u);
  EXPECT_EQ(P.prof().treeShape(), "root");
}

TEST(ProfilerTest, JsonIsValidAndCarriesTheSchema) {
  ProfiledSession P;
  {
    AM_PROF_SCOPE("phase");
    AM_PROF_SCOPE("sub");
  }
  std::string J = P.prof().toJsonString();
  std::string Error;
  EXPECT_TRUE(json::validate(J, &Error)) << Error << "\n" << J;
  EXPECT_NE(J.find("\"schema\":\"amprof-v1\""), std::string::npos) << J;
  EXPECT_NE(J.find("\"shape\":"), std::string::npos) << J;
  EXPECT_NE(J.find("\"collapsed\":"), std::string::npos) << J;
  EXPECT_NE(J.find("\"name\":\"phase\""), std::string::npos) << J;
}

TEST(ProfilerTest, CollapsedStacksJoinThePathWithSemicolons) {
  ProfiledSession P;
  {
    AM_PROF_SCOPE("a");
    AM_PROF_SCOPE("b");
  }
  std::string Folded = P.prof().toCollapsedString();
  EXPECT_NE(Folded.find("a "), std::string::npos) << Folded;
  EXPECT_NE(Folded.find("a;b "), std::string::npos) << Folded;
}

TEST(ProfilerTest, MergedTreeShapeIsSchedulingIndependent) {
  // The solver merges per-worker profilers in batch-index order, and
  // merge() visits children name-sorted — so the merged shape must
  // depend only on the *set* of scopes each worker entered, never on
  // the order scheduling happened to run them in.  Simulate two
  // schedules of the same three workers: same scopes per worker,
  // entered in different orders.
  auto RunWorker = [](prof::Profiler &P, std::vector<const char *> Scopes) {
    P.setEnabled(true);
    for (const char *S : Scopes) {
      P.enter("dfa.solve.slice");
      P.enter(S);
      P.leave();
      P.leave();
    }
  };
  prof::Profiler A1, A2, A3;
  RunWorker(A1, {"meet", "transfer"});
  RunWorker(A2, {"transfer"});
  RunWorker(A3, {"meet"});
  prof::Profiler B1, B2, B3;
  RunWorker(B1, {"transfer", "meet"}); // same scopes, swapped order
  RunWorker(B2, {"transfer"});
  RunWorker(B3, {"meet"});

  prof::Profiler SessionA, SessionB;
  SessionA.setEnabled(true);
  SessionB.setEnabled(true);
  for (prof::Profiler *W : {&A1, &A2, &A3})
    SessionA.merge(*W);
  for (prof::Profiler *W : {&B1, &B2, &B3})
    SessionB.merge(*W);
  EXPECT_EQ(SessionA.treeShape(), SessionB.treeShape());
  // And the counts aggregated across workers survive the fold.
  EXPECT_NE(SessionA.treeShape().find("dfa.solve.slice(4)"),
            std::string::npos)
      << SessionA.treeShape();
}

TEST(ProfilerTest, MemoryIntrospectionIsHonest) {
  if (prof::allocTrackingAvailable()) {
    uint64_t Bytes0 = prof::allocatedBytes();
    uint64_t Calls0 = prof::allocationCount();
    std::vector<char> *V = new std::vector<char>(4096);
    EXPECT_GE(prof::allocatedBytes() - Bytes0, 4096u);
    EXPECT_GE(prof::allocationCount() - Calls0, 1u);
    delete V;
    // Monotonic: deallocation never subtracts.
    EXPECT_GE(prof::allocatedBytes(), Bytes0 + 4096);
  }
#ifdef __linux__
  EXPECT_GT(prof::peakRssBytes(), 0u);
#endif
}

TEST(ProfilerTest, MemoryGaugesOnlyAppearWhereAvailable) {
  stats::Registry R;
  prof::recordMemoryGauges(R);
  if (prof::allocTrackingAvailable()) {
    ASSERT_NE(R.findGauge("mem.alloc_bytes"), nullptr);
    EXPECT_GT(R.findGauge("mem.alloc_bytes")->get(), 0);
    ASSERT_NE(R.findGauge("mem.alloc_count"), nullptr);
  } else {
    EXPECT_EQ(R.findGauge("mem.alloc_bytes"), nullptr);
  }
#ifdef __linux__
  ASSERT_NE(R.findGauge("mem.peak_rss_bytes"), nullptr);
  EXPECT_GT(R.findGauge("mem.peak_rss_bytes")->get(), 0);
#endif
}

} // namespace
