//===- tests/fault_injection_test.cpp - Fault detection matrix -*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
//
// The detection matrix: every fault class must (a) actually fire on the
// chosen program — firedCount() proves the matrix is not vacuous — and
// (b) be detected and rolled back by the guarded pipeline, leaving the
// output byte-identical to a fault-free run.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "figures/PaperFigures.h"
#include "ir/Printer.h"
#include "transform/Pipeline.h"
#include "verify/FaultInjector.h"

#include <gtest/gtest.h>

using namespace am;

namespace {

const fault::FaultClass AllClasses[] = {
    fault::FaultClass::RaeFlipBit,
    fault::FaultClass::AhtSkipBlockage,
    fault::FaultClass::AhtMisplaceInsert,
    fault::FaultClass::CorruptEdge,
};

PipelineOptions guarded() {
  PipelineOptions Opts;
  Opts.Guarded = true;
  return Opts;
}

} // namespace

TEST(FaultSpec, ParsesClassAndSite) {
  auto Plain = fault::parseFaultSpec("rae-flip");
  ASSERT_TRUE(Plain.ok());
  EXPECT_EQ(Plain->first, fault::FaultClass::RaeFlipBit);
  EXPECT_EQ(Plain->second, 0u);

  auto Sited = fault::parseFaultSpec("edge-corrupt:3");
  ASSERT_TRUE(Sited.ok());
  EXPECT_EQ(Sited->first, fault::FaultClass::CorruptEdge);
  EXPECT_EQ(Sited->second, 3u);

  EXPECT_FALSE(fault::parseFaultSpec("frobnicate").ok());
  EXPECT_FALSE(fault::parseFaultSpec("rae-flip:x").ok());
  EXPECT_FALSE(fault::parseFaultSpec("").ok());
}

TEST(FaultSpec, ClassNamesRoundTrip) {
  for (fault::FaultClass C : AllClasses) {
    fault::FaultClass Parsed;
    ASSERT_TRUE(fault::parseFaultClass(fault::faultClassName(C), Parsed))
        << fault::faultClassName(C);
    EXPECT_EQ(Parsed, C);
  }
}

TEST(FaultInjectorTest, FiresExactlyOnceAtTheArmedSite) {
  fault::FaultInjector FI;
  FI.arm(fault::FaultClass::RaeFlipBit, 2);
  EXPECT_FALSE(FI.fire(fault::FaultClass::RaeFlipBit)); // site 0
  EXPECT_FALSE(FI.fire(fault::FaultClass::RaeFlipBit)); // site 1
  EXPECT_TRUE(FI.fire(fault::FaultClass::RaeFlipBit));  // site 2
  EXPECT_FALSE(FI.fire(fault::FaultClass::RaeFlipBit)); // never again
  EXPECT_EQ(FI.firedCount(), 1u);
  // Unarmed classes never fire.
  EXPECT_FALSE(FI.fire(fault::FaultClass::CorruptEdge));
  FI.resetCounters();
  EXPECT_FALSE(FI.fire(fault::FaultClass::RaeFlipBit)); // site 0 again
}

// The core matrix: each class injected into a guarded uniform run on the
// running example must fire, be detected, and be rolled back, and the
// final program must equal the fault-free guarded result (the rolled-back
// pass contributes nothing, later passes still run on the clean graph).
TEST(FaultMatrix, EveryClassIsDetectedAndRolledBack) {
  const FlowGraph Input = figure4();
  const std::string Spec = "uniform";
  const PipelineResult Clean = runPipeline(Input, Spec, guarded());
  ASSERT_TRUE(Clean.ok()) << Clean.Error;
  ASSERT_EQ(Clean.RollbackCount, 0u);

  for (fault::FaultClass C : AllClasses) {
    fault::FaultInjector FI;
    FI.arm(C);
    FI.install();
    PipelineResult R = runPipeline(Input, Spec, guarded());
    FI.uninstall();

    EXPECT_EQ(FI.firedCount(), 1u)
        << fault::faultClassName(C) << " never fired: the matrix is vacuous";
    EXPECT_TRUE(R.ok()) << R.Error; // rollbacks are recoveries, not errors
    EXPECT_GE(R.RollbackCount, 1u)
        << fault::faultClassName(C) << " fired but was not rolled back";

    bool SawRollback = false;
    for (const PassRecord &Rec : R.Records)
      if (Rec.Status == PassStatus::RolledBack) {
        SawRollback = true;
        EXPECT_FALSE(Rec.Violation.empty());
      }
    EXPECT_TRUE(SawRollback) << fault::faultClassName(C);

    // The faulty pass was rolled back, so the run degenerates to "no pass
    // changed anything": the output must equal the *input*.
    EXPECT_EQ(printGraph(R.Graph), printGraph(Input))
        << fault::faultClassName(C)
        << ": rollback did not restore the snapshot";
  }
}

// The structural fault must be caught by the cheap IR verifier alone —
// --verify-ir without snapshots stops the run with a diagnostic.
TEST(FaultMatrix, EdgeCorruptionIsCaughtByVerifyIrAlone) {
  fault::FaultInjector FI;
  FI.arm(fault::FaultClass::CorruptEdge);
  FI.install();
  PipelineOptions Opts;
  Opts.VerifyIR = true;
  PipelineResult R = runPipeline(figure4(), "uniform", Opts);
  FI.uninstall();

  EXPECT_EQ(FI.firedCount(), 1u);
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("IR verification failed"), std::string::npos)
      << R.Error;
  EXPECT_FALSE(R.Diag.empty());
}

// An armed fault whose site index is never reached must be a no-op: the
// guarded run fires nothing, rolls back nothing, and produces exactly the
// clean result.
TEST(FaultMatrix, UnreachedSiteIsANoOp) {
  const FlowGraph Input = figure4();
  const PipelineResult Clean = runPipeline(Input, "uniform", guarded());

  for (fault::FaultClass C : AllClasses) {
    fault::FaultInjector FI;
    FI.arm(C, 1000000); // far beyond any real opportunity count
    FI.install();
    PipelineResult R = runPipeline(Input, "uniform", guarded());
    FI.uninstall();

    EXPECT_EQ(FI.firedCount(), 0u) << fault::faultClassName(C);
    EXPECT_EQ(R.RollbackCount, 0u) << fault::faultClassName(C);
    ASSERT_TRUE(R.ok()) << R.Error;
    EXPECT_EQ(printGraph(R.Graph), printGraph(Clean.Graph))
        << fault::faultClassName(C);
  }
}

// Rollback determinism: injecting the same fault twice produces the same
// records, the same violation text, and the same output, run to run.
TEST(FaultMatrix, RollbackIsDeterministic) {
  const FlowGraph Input = figure4();
  std::string FirstOutput, FirstViolation;
  for (int Run = 0; Run < 2; ++Run) {
    fault::FaultInjector FI;
    FI.arm(fault::FaultClass::RaeFlipBit);
    FI.install();
    PipelineResult R = runPipeline(Input, "uniform", guarded());
    FI.uninstall();
    ASSERT_EQ(FI.firedCount(), 1u);
    ASSERT_GE(R.RollbackCount, 1u);
    std::string Violation;
    for (const PassRecord &Rec : R.Records)
      if (Rec.Status == PassStatus::RolledBack)
        Violation += Rec.Violation + "\n";
    if (Run == 0) {
      FirstOutput = printGraph(R.Graph);
      FirstViolation = Violation;
    } else {
      EXPECT_EQ(printGraph(R.Graph), FirstOutput);
      EXPECT_EQ(Violation, FirstViolation);
    }
  }
}

// Faults injected into an *unguarded* run are the disease the guard
// exists for: the semantic ones silently change program behaviour.  This
// pins down that the injection itself is real (not detected-by-accident
// inside the pass) for at least the rae bit flip.
TEST(FaultMatrix, UnguardedRaeFlipSilentlyCorrupts) {
  const FlowGraph Input = figure4();
  const PipelineResult Clean = runPipeline(Input, "uniform");
  ASSERT_TRUE(Clean.ok());

  fault::FaultInjector FI;
  FI.arm(fault::FaultClass::RaeFlipBit);
  FI.install();
  PipelineResult R = runPipeline(Input, "uniform");
  FI.uninstall();

  ASSERT_EQ(FI.firedCount(), 1u);
  ASSERT_TRUE(R.ok()) << "unguarded runs do not detect anything";
  EXPECT_NE(printGraph(R.Graph), printGraph(Clean.Graph))
      << "the injected fault had no observable effect; the matrix test "
         "would be vacuous";
}
