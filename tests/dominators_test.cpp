//===- tests/dominators_test.cpp - Dominator and loop tests ----*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "analysis/Dominators.h"
#include "figures/PaperFigures.h"
#include "gen/RandomProgram.h"
#include "transform/UniformEmAm.h"

#include <gtest/gtest.h>

using namespace am;
using namespace am::test;

TEST(Dominators, StraightLine) {
  FlowGraph G = parse(R"(
graph {
b0:
  goto b1
b1:
  goto b2
b2:
  halt
}
)");
  DominatorTree T = DominatorTree::compute(G);
  EXPECT_EQ(T.idom(0), InvalidBlock);
  EXPECT_EQ(T.idom(1), 0u);
  EXPECT_EQ(T.idom(2), 1u);
  EXPECT_TRUE(T.dominates(0, 2));
  EXPECT_TRUE(T.dominates(2, 2));
  EXPECT_FALSE(T.dominates(2, 0));
}

TEST(Dominators, DiamondJoinDominatedByFork) {
  FlowGraph G = parse(R"(
graph {
b0:
  br b1 b2
b1:
  goto b3
b2:
  goto b3
b3:
  halt
}
)");
  DominatorTree T = DominatorTree::compute(G);
  EXPECT_EQ(T.idom(3), 0u); // neither branch dominates the join
  EXPECT_EQ(T.idom(1), 0u);
  EXPECT_EQ(T.idom(2), 0u);
  EXPECT_FALSE(T.dominates(1, 3));
}

TEST(Dominators, BruteForceAgreementOnRandomGraphs) {
  // Cross-check against the definition: A dominates B iff removing A
  // makes B unreachable from the start.
  for (uint64_t Seed = 0; Seed < 10; ++Seed) {
    FlowGraph G = generateIrreducibleCfg(Seed);
    DominatorTree T = DominatorTree::compute(G);
    for (BlockId A = 0; A < G.numBlocks(); ++A) {
      // Reachability avoiding A.
      std::vector<bool> Reached(G.numBlocks(), false);
      if (A != G.start()) {
        std::vector<BlockId> Work{G.start()};
        Reached[G.start()] = true;
        while (!Work.empty()) {
          BlockId Cur = Work.back();
          Work.pop_back();
          for (BlockId S : G.block(Cur).Succs)
            if (S != A && !Reached[S]) {
              Reached[S] = true;
              Work.push_back(S);
            }
        }
      }
      for (BlockId B = 0; B < G.numBlocks(); ++B) {
        bool Expect = A == B || !Reached[B];
        EXPECT_EQ(T.dominates(A, B), Expect)
            << "seed " << Seed << " A=" << A << " B=" << B;
      }
    }
  }
}

TEST(Loops, WhileLoopDetected) {
  FlowGraph G = parse(R"(
program {
  i := 0;
  while (i < n) {
    x := x + i;
    i := i + 1;
  }
  out(x);
}
)");
  LoopInfo Info = LoopInfo::compute(G);
  ASSERT_EQ(Info.Loops.size(), 1u);
  EXPECT_FALSE(Info.Irreducible);
  const NaturalLoop &L = Info.Loops[0];
  // Header is the condition block; the body and latch are inside.
  EXPECT_TRUE(L.Blocks.test(L.Header));
  EXPECT_TRUE(L.Blocks.test(L.Latch));
  EXPECT_GE(L.Blocks.count(), 2u);
  EXPECT_GE(Info.assignmentsInLoops(G), 2u);
}

TEST(Loops, NestedLoopsYieldTwoLoops) {
  FlowGraph G = parse(R"(
program {
  i := 0;
  while (i < 3) {
    j := 0;
    while (j < 3) {
      j := j + 1;
    }
    i := i + 1;
  }
  out(i, j);
}
)");
  LoopInfo Info = LoopInfo::compute(G);
  EXPECT_EQ(Info.Loops.size(), 2u);
  EXPECT_FALSE(Info.Irreducible);
}

TEST(Loops, Figure7IsIrreducible) {
  LoopInfo Info = LoopInfo::compute(figure7());
  EXPECT_TRUE(Info.Irreducible);
  EXPECT_GE(Info.Loops.size(), 1u); // the reducible first loop
}

TEST(Loops, StructuredGeneratorProducesReducibleGraphs) {
  for (uint64_t Seed = 0; Seed < 20; ++Seed) {
    FlowGraph G = generateStructuredProgram(Seed);
    EXPECT_FALSE(LoopInfo::compute(G).Irreducible) << "seed " << Seed;
  }
}

TEST(Loops, UniformMovesInvariantAssignmentsOutOfLoops) {
  FlowGraph G = parse(R"(
program {
  i := 0;
  if (n > 0) {
    repeat {
      k := a * b;
      s := s + k;
      i := i + 1;
    } until (i >= n);
  }
  out(s);
}
)");
  FlowGraph U = runUniformEmAm(G);
  unsigned Before = LoopInfo::compute(G).assignmentsInLoops(G);
  FlowGraph UCopy = U; // LoopInfo::compute needs a graph reference
  unsigned After = LoopInfo::compute(UCopy).assignmentsInLoops(UCopy);
  EXPECT_LT(After, Before) << printGraph(U);
}
