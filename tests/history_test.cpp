//===- tests/history_test.cpp - Run-history store tests --------*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
//
// The amhist-v1 longitudinal store behind ambench/ambatch --history and
// tools/amtrend: serialization round trips, the append-file contract,
// the reader's crash recovery (partial trailing record, malformed
// interior lines, foreign-schema records), schema refusal for files
// that are something else entirely, and the out-of-order merge.
//
//===----------------------------------------------------------------------===//

#include "support/History.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

using namespace am;

namespace {

hist::HistoryEntry makeEntry(uint64_t TimeMs, uint64_t WallNs,
                             const std::string &Sha = "abc123") {
  hist::HistoryEntry E;
  E.Source = "ambench";
  E.TimeUnixMs = TimeMs;
  E.Host = "testhost";
  E.Cpu = "test-cpu";
  E.Compiler = "test++ 1.0";
  E.GitSha = Sha;
  E.HwThreads = 8;
  E.SolverThreads = 2;
  E.CalibNs = 100'000'000;
  hist::PresetStat P;
  P.WallNs = WallNs;
  P.MadNs = WallNs / 100;
  P.Work.emplace_back("blocks_in", 100);
  P.Work.emplace_back("instrs_in", 400);
  E.Presets.emplace_back("dfa/solve", std::move(P));
  E.Counters.emplace_back("dfa.iterations", 42);
  return E;
}

std::string serialize(const hist::HistoryEntry &E) {
  std::string Line;
  hist::appendHistoryJson(Line, E);
  return Line;
}

std::string tempPath(const char *Name) {
  return testing::TempDir() + Name;
}

//===----------------------------------------------------------------------===//
// Serialization round trip
//===----------------------------------------------------------------------===//

TEST(History, JsonRoundTrip) {
  hist::HistoryEntry E = makeEntry(1234, 250'000'000);
  std::string Line = serialize(E);
  EXPECT_NE(Line.find("\"schema\":\"amhist-v1\""), std::string::npos);
  EXPECT_NE(Line.find("\"git_sha\":\"abc123\""), std::string::npos);

  std::istringstream In(Line + "\n");
  hist::HistoryFile H;
  ASSERT_TRUE(hist::readHistory(In, H));
  ASSERT_EQ(H.Entries.size(), 1u);
  EXPECT_EQ(H.SkippedLines, 0u);
  const hist::HistoryEntry &R = H.Entries[0];
  EXPECT_EQ(R.Source, "ambench");
  EXPECT_EQ(R.TimeUnixMs, 1234u);
  EXPECT_EQ(R.Host, "testhost");
  EXPECT_EQ(R.Cpu, "test-cpu");
  EXPECT_EQ(R.Compiler, "test++ 1.0");
  EXPECT_EQ(R.GitSha, "abc123");
  EXPECT_EQ(R.HwThreads, 8u);
  EXPECT_EQ(R.SolverThreads, 2u);
  EXPECT_EQ(R.CalibNs, 100'000'000u);
  ASSERT_EQ(R.Presets.size(), 1u);
  EXPECT_EQ(R.Presets[0].first, "dfa/solve");
  EXPECT_EQ(R.Presets[0].second.WallNs, 250'000'000u);
  EXPECT_EQ(R.Presets[0].second.MadNs, 2'500'000u);
  ASSERT_EQ(R.Presets[0].second.Work.size(), 2u);
  EXPECT_EQ(R.Presets[0].second.Work[0].first, "blocks_in");
  ASSERT_EQ(R.Counters.size(), 1u);
  EXPECT_EQ(R.Counters[0].first, "dfa.iterations");
  EXPECT_EQ(R.Counters[0].second, 42u);
  EXPECT_FALSE(R.HasAggregate);
}

TEST(History, AggregateDigestRoundTrip) {
  hist::HistoryEntry E = makeEntry(1, 1000);
  E.Source = "ambatch";
  E.HasAggregate = true;
  E.AggJobs = 12;
  E.AggHash = "00deadbeef001122";
  E.AggSkippedLines = 3;
  E.AggStatuses.emplace_back("ok", 11);
  E.AggStatuses.emplace_back("rolled_back", 1);

  std::istringstream In(serialize(E) + "\n");
  hist::HistoryFile H;
  ASSERT_TRUE(hist::readHistory(In, H));
  ASSERT_EQ(H.Entries.size(), 1u);
  const hist::HistoryEntry &R = H.Entries[0];
  ASSERT_TRUE(R.HasAggregate);
  EXPECT_EQ(R.AggJobs, 12u);
  EXPECT_EQ(R.AggHash, "00deadbeef001122");
  EXPECT_EQ(R.AggSkippedLines, 3u);
  ASSERT_EQ(R.AggStatuses.size(), 2u);
  EXPECT_EQ(R.AggStatuses[0].first, "ok");
  EXPECT_EQ(R.AggStatuses[0].second, 11u);
}

TEST(History, SerializationIsDeterministic) {
  hist::HistoryEntry E = makeEntry(7, 999);
  EXPECT_EQ(serialize(E), serialize(E));
}

//===----------------------------------------------------------------------===//
// Append-file contract
//===----------------------------------------------------------------------===//

TEST(History, AppendAccumulates) {
  std::string Path = tempPath("hist_append.jsonl");
  std::remove(Path.c_str());
  ASSERT_TRUE(hist::appendHistoryFile(Path, makeEntry(1, 100)));
  ASSERT_TRUE(hist::appendHistoryFile(Path, makeEntry(2, 200)));
  ASSERT_TRUE(hist::appendHistoryFile(Path, makeEntry(3, 300)));

  hist::HistoryFile H;
  std::string Err;
  ASSERT_TRUE(hist::readHistoryFile(Path, H, &Err)) << Err;
  ASSERT_EQ(H.Entries.size(), 3u);
  EXPECT_EQ(H.Entries[0].TimeUnixMs, 1u);
  EXPECT_EQ(H.Entries[2].TimeUnixMs, 3u);
  EXPECT_EQ(H.SkippedLines, 0u);
  std::remove(Path.c_str());
}

TEST(History, MissingFileIsAnError) {
  hist::HistoryFile H;
  std::string Err;
  EXPECT_FALSE(hist::readHistoryFile(tempPath("hist_nonexistent.jsonl"), H,
                                     &Err));
  EXPECT_NE(Err.find("cannot open"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Crash recovery and malformed input
//===----------------------------------------------------------------------===//

TEST(History, EmptyStreamIsValidEmptyHistory) {
  std::istringstream In("");
  hist::HistoryFile H;
  EXPECT_TRUE(hist::readHistory(In, H));
  EXPECT_TRUE(H.Entries.empty());
  EXPECT_EQ(H.SkippedLines, 0u);
}

TEST(History, PartialTrailingRecordIsSkippedWithWarning) {
  std::string Full = serialize(makeEntry(1, 100)) + "\n" +
                     serialize(makeEntry(2, 200)) + "\n" +
                     serialize(makeEntry(3, 300)) + "\n";
  // Cut mid-way through the last record, as a killed appender would.
  std::istringstream In(Full.substr(0, Full.size() - 40));
  hist::HistoryFile H;
  ASSERT_TRUE(hist::readHistory(In, H));
  EXPECT_EQ(H.Entries.size(), 2u);
  EXPECT_EQ(H.SkippedLines, 1u);
  ASSERT_EQ(H.Warnings.size(), 1u);
  EXPECT_NE(H.Warnings[0].find("ignoring partial trailing record"),
            std::string::npos);
}

TEST(History, MalformedInteriorLineIsSkippedWithWarning) {
  std::string Text = serialize(makeEntry(1, 100)) + "\n" +
                     "{this is not json\n" +
                     serialize(makeEntry(2, 200)) + "\n";
  std::istringstream In(Text);
  hist::HistoryFile H;
  ASSERT_TRUE(hist::readHistory(In, H));
  EXPECT_EQ(H.Entries.size(), 2u);
  EXPECT_EQ(H.SkippedLines, 1u);
  ASSERT_EQ(H.Warnings.size(), 1u);
  EXPECT_NE(H.Warnings[0].find("line 2: ignoring malformed record"),
            std::string::npos);
}

TEST(History, BlankLinesAreIgnoredSilently) {
  std::string Text = "\n" + serialize(makeEntry(1, 100)) + "\n\n" +
                     serialize(makeEntry(2, 200)) + "\n\n";
  std::istringstream In(Text);
  hist::HistoryFile H;
  ASSERT_TRUE(hist::readHistory(In, H));
  EXPECT_EQ(H.Entries.size(), 2u);
  EXPECT_EQ(H.SkippedLines, 0u);
}

TEST(History, WrongSchemaFirstLineRefusesTheFile) {
  // An event log is not a history; reading zero entries silently would
  // hide the mistake.
  std::istringstream In("{\"schema\":\"amevents-v1\",\"passes\":\"x\"}\n");
  hist::HistoryFile H;
  EXPECT_FALSE(hist::readHistory(In, H));
}

TEST(History, WrongSchemaInteriorLineIsSkipped) {
  std::string Text = serialize(makeEntry(1, 100)) + "\n" +
                     "{\"schema\":\"amevents-v1\"}\n" +
                     serialize(makeEntry(2, 200)) + "\n";
  std::istringstream In(Text);
  hist::HistoryFile H;
  ASSERT_TRUE(hist::readHistory(In, H));
  EXPECT_EQ(H.Entries.size(), 2u);
  EXPECT_EQ(H.SkippedLines, 1u);
  EXPECT_NE(H.Warnings[0].find("schema 'amevents-v1'"), std::string::npos);
}

TEST(History, RecordWithoutSourceIsSkipped) {
  std::string Text = serialize(makeEntry(1, 100)) + "\n" +
                     "{\"schema\":\"amhist-v1\",\"time_unix_ms\":5}\n";
  std::istringstream In(Text);
  hist::HistoryFile H;
  ASSERT_TRUE(hist::readHistory(In, H));
  EXPECT_EQ(H.Entries.size(), 1u);
  EXPECT_EQ(H.SkippedLines, 1u);
  EXPECT_NE(H.Warnings[0].find("without a source"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Out-of-order merge
//===----------------------------------------------------------------------===//

TEST(History, SortByTimeMergesOutOfOrderAppends) {
  // Two interleaved appenders (concatenated histories): file order is
  // not chronological.
  std::string Text = serialize(makeEntry(30, 3, "c3")) + "\n" +
                     serialize(makeEntry(10, 1, "c1")) + "\n" +
                     serialize(makeEntry(40, 4, "c4")) + "\n" +
                     serialize(makeEntry(20, 2, "c2")) + "\n";
  std::istringstream In(Text);
  hist::HistoryFile H;
  ASSERT_TRUE(hist::readHistory(In, H));
  hist::sortByTime(H);
  ASSERT_EQ(H.Entries.size(), 4u);
  EXPECT_EQ(H.Entries[0].GitSha, "c1");
  EXPECT_EQ(H.Entries[1].GitSha, "c2");
  EXPECT_EQ(H.Entries[2].GitSha, "c3");
  EXPECT_EQ(H.Entries[3].GitSha, "c4");
}

TEST(History, SortByTimeIsStableOnTies) {
  std::string Text = serialize(makeEntry(10, 1, "first")) + "\n" +
                     serialize(makeEntry(10, 2, "second")) + "\n";
  std::istringstream In(Text);
  hist::HistoryFile H;
  ASSERT_TRUE(hist::readHistory(In, H));
  hist::sortByTime(H);
  EXPECT_EQ(H.Entries[0].GitSha, "first");
  EXPECT_EQ(H.Entries[1].GitSha, "second");
}

//===----------------------------------------------------------------------===//
// Attribution helpers
//===----------------------------------------------------------------------===//

TEST(History, GitShaPrefersEnvironment) {
  ASSERT_EQ(setenv("AM_GIT_SHA", "envsha123", 1), 0);
  EXPECT_EQ(hist::gitSha(), "envsha123");
  // Empty env falls through to the build definition / "unknown".
  ASSERT_EQ(setenv("AM_GIT_SHA", "", 1), 0);
  EXPECT_NE(hist::gitSha(), "");
  unsetenv("AM_GIT_SHA");
}

TEST(History, StampFingerprintFillsAttribution) {
  hist::HistoryEntry E;
  hist::stampFingerprint(E);
  EXPECT_GT(E.TimeUnixMs, 0u);
  EXPECT_FALSE(E.Host.empty());
  EXPECT_FALSE(E.Cpu.empty());
  EXPECT_FALSE(E.Compiler.empty());
  EXPECT_FALSE(E.GitSha.empty());
  EXPECT_GT(E.HwThreads, 0u);
}

TEST(History, CalibrationSpinIsDeterministicWork) {
  // The spin's *result* is a pure function of the iteration count — only
  // its duration varies by machine, which is the whole point.
  EXPECT_EQ(hist::calibrationSpin(1000), hist::calibrationSpin(1000));
  EXPECT_NE(hist::calibrationSpin(1000), hist::calibrationSpin(2000));
  EXPECT_GT(hist::measureCalibrationSpin(1, 1000), 0u);
}

} // namespace
