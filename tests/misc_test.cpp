//===- tests/misc_test.cpp - Remaining corners -----------------*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "analysis/Dominators.h"
#include "analysis/Lifetime.h"
#include "figures/PaperFigures.h"
#include "interp/Equivalence.h"
#include "transform/AssignmentMotion.h"
#include "transform/Initialization.h"
#include "transform/Pipeline.h"
#include "transform/UniformEmAm.h"

#include <gtest/gtest.h>

using namespace am;
using namespace am::test;

TEST(Dominators, SelfLoopIsItsOwnNaturalLoop) {
  FlowGraph G = parse(R"(
graph {
b0:
  goto b1
b1:
  x := x + 1
  br b1 b2
b2:
  out(x)
  halt
}
)");
  LoopInfo Info = LoopInfo::compute(G);
  ASSERT_EQ(Info.Loops.size(), 1u);
  EXPECT_EQ(Info.Loops[0].Header, 1u);
  EXPECT_EQ(Info.Loops[0].Latch, 1u);
  EXPECT_EQ(Info.Loops[0].Blocks.count(), 1u);
  EXPECT_FALSE(Info.Irreducible);
  EXPECT_EQ(Info.assignmentsInLoops(G), 1u);
}

TEST(Dominators, SplitSelfLoopStillOneLoop) {
  FlowGraph G = parse(R"(
graph {
b0:
  goto b1
b1:
  x := x + 1
  br b1 b2
b2:
  out(x)
  halt
}
)");
  G.splitCriticalEdges();
  LoopInfo Info = LoopInfo::compute(G);
  ASSERT_EQ(Info.Loops.size(), 1u);
  EXPECT_EQ(Info.Loops[0].Blocks.count(), 2u); // body + synthetic latch
}

TEST(AmPhase, StatsCountHoistRoundsAndEliminations) {
  FlowGraph G = figure4();
  G.splitCriticalEdges();
  AmPhaseStats Stats = runAssignmentMotionPhase(G);
  // Without initialization only y := c+d is removable; x := y+z cannot
  // move (Figure 6b).
  EXPECT_EQ(Stats.Eliminated, 1u);
  EXPECT_GE(Stats.Iterations, 2u);
}

TEST(AmPhase, CapZeroMeansUnbounded) {
  FlowGraph G = figure4();
  G.splitCriticalEdges();
  runInitializationPhase(G);
  AmPhaseStats Unbounded = runAssignmentMotionPhase(G, 0);
  EXPECT_GE(Unbounded.Iterations, 3u);
  // Re-running terminates immediately.
  AmPhaseStats Again = runAssignmentMotionPhase(G, 0);
  EXPECT_EQ(Again.Iterations, 1u);
  EXPECT_EQ(Again.Eliminated, 0u);
}

TEST(Lifetime, FlushDropsWholeLifetimesNotJustAssignments) {
  // Uniform-without-flush carries every initialization; the flush version
  // reduces both assignments and live ranges on the same program.
  UniformOptions NoFlush;
  NoFlush.RunFinalFlush = false;
  FlowGraph G = figure4();
  LifetimeStats WithFlush = computeLifetimeStats(runUniformEmAm(G));
  LifetimeStats WithoutFlush =
      computeLifetimeStats(runUniformEmAm(G, NoFlush));
  EXPECT_LT(WithFlush.TempAssignments, WithoutFlush.TempAssignments);
  EXPECT_LT(WithFlush.TempLifetimePoints, WithoutFlush.TempLifetimePoints);
  EXPECT_LE(WithFlush.MaxLiveTemps, WithoutFlush.MaxLiveTemps);
}

TEST(Printer, DotRendersOptimizedProgramsWithTemps) {
  FlowGraph U = runUniformEmAm(figure4());
  std::string Dot = printDot(U, "fig5");
  EXPECT_NE(Dot.find("h1 := c + d"), std::string::npos);
  EXPECT_NE(Dot.find("(start)"), std::string::npos);
  EXPECT_NE(Dot.find("(end)"), std::string::npos);
}

TEST(Equivalence, StepLimitComparesPrefixes) {
  FlowGraph Loop = parse(R"(
graph {
b0:
  goto b1
b1:
  i := i + 1
  out(i)
  br b1 b2
b2:
  halt
}
)");
  Interpreter::Options Tiny;
  Tiny.MaxSteps = 30;
  Interpreter::Options Tinier;
  Tinier.MaxSteps = 12;
  // The same program truncated at different depths: prefix-equivalent.
  auto RepA = checkEquivalent(Loop, Loop, {}, /*Seed=*/0, Tiny);
  EXPECT_TRUE(RepA.Equivalent);
  ExecResult Long = Interpreter::execute(Loop, {}, 0, Tiny);
  ExecResult Short = Interpreter::execute(Loop, {}, 0, Tinier);
  if (Long.St == ExecResult::Status::StepLimit &&
      Short.St == ExecResult::Status::StepLimit) {
    EXPECT_GE(Long.Output.size(), Short.Output.size());
  }
}

TEST(Figures, Figure2bIsAFixpointOfTheAlgorithm) {
  // The paper's drawn solution is already optimal: the algorithm must not
  // change its dynamic behaviour further.
  FlowGraph Drawn = figure2b();
  FlowGraph Again = runAssignmentMotionOnly(Drawn);
  for (uint64_t Seed = 0; Seed < 8; ++Seed) {
    auto Rep = checkEquivalent(Drawn, Again, {{"a", 1}, {"b", 2}}, Seed);
    ASSERT_TRUE(Rep.Equivalent) << Rep.Detail;
    auto RunDrawn = Interpreter::execute(Drawn, {{"a", 1}, {"b", 2}}, Seed);
    EXPECT_EQ(Rep.Rhs.Stats.AssignExecutions,
              RunDrawn.Stats.AssignExecutions);
  }
}

TEST(Pipeline, LogMentionsEveryPass) {
  PipelineResult R = runPipeline(figure4(), "split,init,rae,aht,flush,"
                                            "simplify");
  ASSERT_TRUE(R.ok());
  ASSERT_EQ(R.Log.size(), 6u);
  EXPECT_EQ(R.Log[0].substr(0, 6), "split:");
  EXPECT_EQ(R.Log[1].substr(0, 5), "init:");
  EXPECT_EQ(R.Log[5].substr(0, 9), "simplify:");
}

TEST(Uniform, WorksOnAlreadyOptimalPrograms) {
  // Figure 5 through the full pipeline: dynamically a no-op.
  FlowGraph Fig5 = figure5();
  FlowGraph Again = runUniformEmAm(Fig5);
  for (auto [X, Z] : {std::pair<int64_t, int64_t>{40, 2}, {0, 0}}) {
    std::unordered_map<std::string, int64_t> In = {
        {"c", 1}, {"d", 2}, {"x", X}, {"z", Z}, {"i", 1}};
    auto Rep = checkEquivalent(Fig5, Again, In);
    ASSERT_TRUE(Rep.Equivalent) << Rep.Detail;
    auto RunFig5 = Interpreter::execute(Fig5, In);
    EXPECT_EQ(Rep.Rhs.Stats.ExprEvaluations, RunFig5.Stats.ExprEvaluations);
  }
}
