//===- tests/telemetry_test.cpp - Session scoping tests --------*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
//
// telemetry::Session scoping (support/Telemetry.h): every observability
// subsystem — stats registry, remark sink, profiler, recorder hook — is
// owned per session, installed sessions route the singleton accessors,
// nesting restores, and code that never installs a session keeps the
// process-default singleton behaviour.
//
//===----------------------------------------------------------------------===//

#include "figures/PaperFigures.h"
#include "report/Recorder.h"
#include "support/Profiler.h"
#include "support/Remarks.h"
#include "support/Stats.h"
#include "support/Telemetry.h"
#include "transform/Pipeline.h"
#include "transform/UniformEmAm.h"

#include <gtest/gtest.h>

using namespace am;

namespace {

TEST(TelemetryTest, DefaultSessionIsStableIdentity) {
  telemetry::Session &A = telemetry::Session::current();
  telemetry::Session &B = telemetry::Session::current();
  EXPECT_EQ(&A, &B);
  EXPECT_EQ(&A, &telemetry::Session::processDefault());
  EXPECT_EQ(&stats::Registry::get(), &A.stats());
  EXPECT_EQ(&remarks::Sink::get(), &A.remarks());
  EXPECT_EQ(&prof::Profiler::get(), &A.profiler());
}

TEST(TelemetryTest, InstalledSessionRoutesTheAccessors) {
  telemetry::Session S;
  EXPECT_NE(&S, &telemetry::Session::processDefault());
  telemetry::SessionScope Scope(S);
  EXPECT_EQ(&telemetry::Session::current(), &S);
  EXPECT_EQ(&stats::Registry::get(), &S.stats());
  EXPECT_EQ(&remarks::Sink::get(), &S.remarks());
  EXPECT_EQ(&prof::Profiler::get(), &S.profiler());
}

TEST(TelemetryTest, ScopesNestAndRestore) {
  telemetry::Session Outer, Inner;
  telemetry::Session &Default = telemetry::Session::current();
  {
    telemetry::SessionScope OuterScope(Outer);
    EXPECT_EQ(&telemetry::Session::current(), &Outer);
    {
      telemetry::SessionScope InnerScope(Inner);
      EXPECT_EQ(&telemetry::Session::current(), &Inner);
    }
    EXPECT_EQ(&telemetry::Session::current(), &Outer);
  }
  EXPECT_EQ(&telemetry::Session::current(), &Default);
}

TEST(TelemetryTest, CountersLandInTheInstalledSession) {
  telemetry::Session A, B;
  auto BumpWorked = [] {
    // The macro's cached pointer must re-resolve when the session
    // changes (Registry::generation() differs per registry), so one
    // static instrument lands in whichever session is current.
    AM_STAT_COUNTER(Ctr, "test.telemetry_bump");
    AM_STAT_INC(Ctr);
  };
  {
    telemetry::SessionScope Scope(A);
    BumpWorked();
    BumpWorked();
  }
  {
    telemetry::SessionScope Scope(B);
    BumpWorked();
  }
  EXPECT_EQ(A.stats().counterValue("test.telemetry_bump"), 2u);
  EXPECT_EQ(B.stats().counterValue("test.telemetry_bump"), 1u);
  EXPECT_EQ(&A.stats() == &B.stats(), false);
}

TEST(TelemetryTest, RemarksIsolatePerSession) {
  telemetry::Session A, B;
  {
    telemetry::SessionScope Scope(A);
    remarks::CollectionScope Collect(true);
    remarks::Remark R;
    R.K = remarks::Kind::Eliminate;
    R.InstrId = remarks::Sink::get().freshId();
    remarks::Sink::get().add(std::move(R));
    EXPECT_EQ(remarks::Sink::get().size(), 1u);
  }
  {
    telemetry::SessionScope Scope(B);
    EXPECT_EQ(remarks::Sink::get().size(), 0u);
  }
  EXPECT_EQ(A.remarks().size(), 1u);
}

TEST(TelemetryTest, ProfilerIsolatesPerSession) {
  telemetry::Session A, B;
  A.profiler().setEnabled(true);
  B.profiler().setEnabled(true);
  {
    telemetry::SessionScope Scope(A);
    AM_PROF_SCOPE("only_in_a");
  }
  {
    telemetry::SessionScope Scope(B);
    AM_PROF_SCOPE("only_in_b");
  }
  EXPECT_EQ(A.profiler().treeShape(), "root{only_in_a(1)}");
  EXPECT_EQ(B.profiler().treeShape(), "root{only_in_b(1)}");
}

TEST(TelemetryTest, RecorderAttachesToTheCurrentSession) {
  telemetry::Session S;
  {
    telemetry::SessionScope Scope(S);
    EXPECT_EQ(report::RecorderSession::current(), nullptr);
    report::RecorderSession Rec;
    Rec.install();
    EXPECT_EQ(report::RecorderSession::current(), &Rec);
    EXPECT_EQ(S.recorder(), &Rec);
    // The default session must not see this recorder.
    telemetry::Session &Default = telemetry::Session::processDefault();
    EXPECT_EQ(Default.recorder(), nullptr);
    Rec.uninstall();
    EXPECT_EQ(report::RecorderSession::current(), nullptr);
    EXPECT_EQ(S.recorder(), nullptr);
  }
}

TEST(TelemetryTest, PipelineRunsUnderTheSuppliedSession) {
  FlowGraph G = figure4();
  telemetry::Session Job;
  PipelineOptions Opts;
  Opts.Telemetry = &Job;
  uint64_t DefaultRuns0 =
      telemetry::Session::current().stats().counterValue("pipeline.runs");
  PipelineResult R = runPipeline(G, "uniform", Opts);
  EXPECT_TRUE(R.ok()) << R.Error;
  // The job's registry saw the run; the ambient session's did not move.
  EXPECT_EQ(Job.stats().counterValue("pipeline.runs"), 1u);
  EXPECT_EQ(
      telemetry::Session::current().stats().counterValue("pipeline.runs"),
      DefaultRuns0);
  EXPECT_GT(Job.stats().counterValue("dfa.solves"), 0u);
}

TEST(TelemetryTest, PipelineProfilesIntoTheSuppliedSession) {
  FlowGraph G = figure4();
  telemetry::Session Job;
  Job.profiler().setEnabled(true);
  PipelineOptions Opts;
  Opts.Telemetry = &Job;
  PipelineResult R = runPipeline(G, "uniform,pde,simplify", Opts);
  EXPECT_TRUE(R.ok()) << R.Error;
  std::string Shape = Job.profiler().treeShape();
  EXPECT_NE(Shape.find("pipeline"), std::string::npos) << Shape;
  EXPECT_NE(Shape.find("uniform"), std::string::npos) << Shape;
  EXPECT_NE(Shape.find("pde"), std::string::npos) << Shape;
  EXPECT_NE(Shape.find("dfa.solve"), std::string::npos) << Shape;
}

TEST(TelemetryTest, SessionsAreReusableAcrossRuns) {
  FlowGraph G = figure4();
  telemetry::Session Job;
  PipelineOptions Opts;
  Opts.Telemetry = &Job;
  EXPECT_TRUE(runPipeline(G, "uniform", Opts).ok());
  EXPECT_TRUE(runPipeline(G, "uniform", Opts).ok());
  EXPECT_EQ(Job.stats().counterValue("pipeline.runs"), 2u);
}

} // namespace
