//===- tests/nested_expr_test.cpp - 3-address decomposition ----*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 6 of the paper end to end: the structured front-end accepts
/// nested expressions and decomposes them into 3-address form on the fly
/// (`x := a+b+c` becomes `t := a+b; x := t+c`), and the uniform algorithm
/// then overcomes the decomposition blockade that stops plain EM.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "interp/Equivalence.h"
#include "transform/CopyPropagation.h"
#include "transform/LazyCodeMotion.h"
#include "transform/UniformEmAm.h"

#include <gtest/gtest.h>

using namespace am;
using namespace am::test;

TEST(NestedExpr, DecomposesLeftAssociativeSums) {
  FlowGraph G = parse(R"(
program {
  x := a + b + c;
  out(x);
}
)");
  // t$0 := a + b; x := t$0 + c.
  ASSERT_EQ(G.block(G.start()).Instrs.size(), 3u);
  EXPECT_EQ(countAssigns(G, "t$0", "a + b"), 1u);
  EXPECT_EQ(countAssigns(G, "x", "t$0 + c"), 1u);
  EXPECT_EQ(run(G, {{"a", 1}, {"b", 2}, {"c", 4}}).Output,
            (std::vector<int64_t>{7}));
}

TEST(NestedExpr, PrecedenceMulBeforeAdd) {
  FlowGraph G = parse(R"(
program {
  x := a + b * c;
  y := a * b + c;
  out(x, y);
}
)");
  // a + (b*c) and (a*b) + c.
  EXPECT_EQ(run(G, {{"a", 2}, {"b", 3}, {"c", 4}}).Output,
            (std::vector<int64_t>{14, 10}));
}

TEST(NestedExpr, ParenthesesOverridePrecedence) {
  FlowGraph G = parse(R"(
program {
  x := (a + b) * c;
  y := a / (b - c);
  out(x, y);
}
)");
  EXPECT_EQ(run(G, {{"a", 10}, {"b", 3}, {"c", 1}}).Output,
            (std::vector<int64_t>{13, 5}));
}

TEST(NestedExpr, DeepNestingEvaluatesCorrectly) {
  FlowGraph G = parse(R"(
program {
  x := ((a + b) * (c - d) + e) * 2 - (a - -3);
  out(x);
}
)");
  int64_t A = 5, B = 2, C = 9, D = 4, E = 1;
  int64_t Expect = ((A + B) * (C - D) + E) * 2 - (A - -3);
  EXPECT_EQ(run(G, {{"a", A}, {"b", B}, {"c", C}, {"d", D}, {"e", E}})
                .Output,
            (std::vector<int64_t>{Expect}));
}

TEST(NestedExpr, ConditionsDecomposeToo) {
  FlowGraph G = parse(R"(
program {
  if (a + b + c > d * e) {
    x := 1;
  } else {
    x := 2;
  }
  out(x);
}
)");
  EXPECT_EQ(run(G, {{"a", 5}, {"b", 5}, {"c", 5}, {"d", 2}, {"e", 3}})
                .Output,
            (std::vector<int64_t>{1}));
  EXPECT_EQ(run(G, {{"a", 1}, {"d", 5}, {"e", 5}}).Output,
            (std::vector<int64_t>{2}));
}

TEST(NestedExpr, DecompVarNamesCannotCollide) {
  // Decomposition temps are named t$N; '$' is not a lexer identifier
  // character, so user code can never name such a variable — the
  // collision guarantee is syntactic.
  EXPECT_FALSE(parseStructured(R"(
program {
  t$0 := 100;
  out(t$0);
}
)").ok());
  // Distinct statements keep drawing fresh temps.
  FlowGraph G = parse(R"(
program {
  x := a + b + c;
  y := a + b + c;
  out(x, y);
}
)");
  EXPECT_EQ(countAssigns(G, "t$0", "a + b"), 1u);
  EXPECT_EQ(countAssigns(G, "t$1", "a + b"), 1u);
}

TEST(NestedExpr, Figure18FromSource) {
  // The paper's Section 6 scenario written naturally: a loop-invariant
  // complex expression.  The front-end decomposes it (Fig 18b); EM gets
  // stuck (Fig 19); uniform EM & AM empties the loop (Fig 20b).
  const char *Src = R"(
program {
  i := 0;
  if (n > 0) {
    repeat {
      x := a + b + c;
      i := i + 1;
    } until (i >= n);
  }
  out(x, i);
}
)";
  FlowGraph G = parse(Src);
  // Decomposition produced the Figure 18(b) shape in the loop.
  EXPECT_EQ(countAssigns(G, "t$0", "a + b"), 1u);
  EXPECT_EQ(countAssigns(G, "x", "t$0 + c"), 1u);

  FlowGraph Em = runLazyCodeMotion(G);
  FlowGraph U = runUniformEmAm(G);
  std::unordered_map<std::string, int64_t> In = {
      {"n", 50}, {"a", 1}, {"b", 2}, {"c", 3}};
  auto RunOrig = Interpreter::execute(G, In);
  auto RunEm = Interpreter::execute(Em, In);
  auto RunU = Interpreter::execute(U, In);
  ASSERT_EQ(RunOrig.Output, RunU.Output);
  ASSERT_EQ(RunOrig.Output, RunEm.Output);
  // Uniform: both invariant computations leave the loop; the only
  // remaining per-iteration evaluation is the loop counter's i+1.
  // EM keeps t$0+c (not syntactically invariant) plus i+1 per iteration;
  // the original evaluates all three.
  EXPECT_LE(RunU.Stats.ExprEvaluations, 50u + 2u);
  EXPECT_GE(RunEm.Stats.ExprEvaluations, 2u * 50u);
  EXPECT_GE(RunOrig.Stats.ExprEvaluations, 3u * 50u);
}

TEST(NestedExpr, SemanticsPreservedUnderAllPasses) {
  const char *Src = R"(
program {
  acc := 0;
  i := 0;
  repeat {
    acc := acc + (base + i * step) * weight;
    i := i + 1;
  } until (i >= 6);
  out(acc);
}
)";
  FlowGraph G = parse(Src);
  FlowGraph U = runUniformEmAm(G);
  FlowGraph Cp = G;
  runCopyPropagation(Cp);
  for (auto [Base, Step, Weight] :
       {std::tuple<int64_t, int64_t, int64_t>{3, 2, 5}, {0, -1, 7}}) {
    std::unordered_map<std::string, int64_t> In = {
        {"base", Base}, {"step", Step}, {"weight", Weight}};
    auto Rep = checkEquivalent(G, U, In);
    EXPECT_TRUE(Rep.Equivalent) << Rep.Detail;
    auto RepCp = checkEquivalent(G, Cp, In);
    EXPECT_TRUE(RepCp.Equivalent) << RepCp.Detail;
  }
}
