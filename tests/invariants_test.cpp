//===- tests/invariants_test.cpp - Cross-analysis invariants ---*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural invariants the analyses must satisfy on *any* program —
/// checked over random structured and irreducible graphs:
///
///  * insertion predicates are contained in the hoistability facts they
///    are derived from (Table 1's N-INSERT ⊆ N-HOISTABLE*, etc.);
///  * the flush placement predicates are mutually exclusive (an init is
///    never also reconstructed at the same point);
///  * LCM insertions only happen where the expression is anticipated,
///    deletions only where locally anticipated;
///  * redundancy facts only mention redundancy-eligible patterns.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "analysis/LcmAnalyses.h"
#include "analysis/PaperAnalyses.h"
#include "gen/RandomProgram.h"
#include "ir/Patterns.h"
#include "transform/Initialization.h"

#include <gtest/gtest.h>

using namespace am;
using namespace am::test;

namespace {

FlowGraph preparedProgram(uint64_t Seed, bool Irreducible) {
  FlowGraph G = Irreducible ? generateIrreducibleCfg(Seed)
                            : generateStructuredProgram(Seed);
  G.splitCriticalEdges();
  return G;
}

} // namespace

class InvariantSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(InvariantSweep, HoistabilityInsertionsAreWithinTheFacts) {
  for (bool Irreducible : {false, true}) {
    FlowGraph G = preparedProgram(GetParam(), Irreducible);
    AssignPatternTable Pats;
    Pats.build(G);
    if (Pats.size() == 0)
      continue;
    HoistabilityAnalysis H = HoistabilityAnalysis::run(G, Pats);
    for (BlockId B = 0; B < G.numBlocks(); ++B) {
      EXPECT_TRUE(H.entryInsert(B).isSubsetOf(H.entryHoistable(B)))
          << "N-INSERT ⊄ N-HOISTABLE at block " << B;
      EXPECT_TRUE(H.exitInsert(B).isSubsetOf(H.exitHoistable(B)))
          << "X-INSERT ⊄ X-HOISTABLE at block " << B;
      EXPECT_TRUE(H.exitInsert(B).isSubsetOf(H.locBlocked(B)))
          << "X-INSERT ⊄ LOC-BLOCKED at block " << B;
      EXPECT_TRUE(H.locHoistable(B).isSubsetOf(H.entryHoistable(B)))
          << "a candidate must be hoistable to its own entry, block " << B;
      // Footnote 6: no entry insertions at join nodes.
      if (G.block(B).Preds.size() > 1) {
        EXPECT_TRUE(H.entryInsert(B).none())
            << "entry insertion at join block " << B;
      }
    }
    // The end node's exit is never hoistable (boundary).
    EXPECT_TRUE(H.exitHoistable(G.end()).none());
  }
}

TEST_P(InvariantSweep, RedundancyOnlyMentionsEligiblePatterns) {
  for (bool Irreducible : {false, true}) {
    FlowGraph G = preparedProgram(GetParam(), Irreducible);
    AssignPatternTable Pats;
    Pats.build(G);
    if (Pats.size() == 0)
      continue;
    RedundancyAnalysis Red = RedundancyAnalysis::run(G, Pats);
    for (BlockId B = 0; B < G.numBlocks(); ++B) {
      EXPECT_TRUE(Red.entry(B).isSubsetOf(Pats.redundancyEligible()));
      EXPECT_TRUE(Red.exit(B).isSubsetOf(Pats.redundancyEligible()));
    }
    // Nothing is redundant at the start node's entry.
    EXPECT_TRUE(Red.entry(G.start()).none());
  }
}

TEST_P(InvariantSweep, FlushPlacementPredicatesAreExclusive) {
  FlowGraph G = preparedProgram(GetParam(), false);
  runInitializationPhase(G);
  FlushAnalysis F = FlushAnalysis::run(G);
  if (F.universe().size() == 0)
    return;
  for (BlockId B = 0; B < G.numBlocks(); ++B) {
    FlushAnalysis::BlockPlan Plan = F.plan(B);
    for (size_t Idx = 0; Idx < Plan.InitBefore.size(); ++Idx) {
      EXPECT_FALSE(Plan.InitBefore[Idx].intersects(Plan.Reconstruct[Idx]))
          << "INIT and RECONSTRUCT overlap at block " << B << " instr "
          << Idx;
    }
    // Exit inits never at branching blocks (post-split impossibility).
    if (G.block(B).branchInstr()) {
      EXPECT_TRUE(Plan.InitAtExit.none());
    }
  }
}

TEST_P(InvariantSweep, LcmInsertionsRespectAnticipabilityAndLocality) {
  FlowGraph G = preparedProgram(GetParam(), false);
  ExprPatternTable Exprs;
  Exprs.build(G);
  if (Exprs.size() == 0)
    return;
  LcmAnalysis L = LcmAnalysis::run(G, Exprs);
  for (BlockId B = 0; B < G.numBlocks(); ++B) {
    for (size_t SuccIdx = 0; SuccIdx < G.block(B).Succs.size(); ++SuccIdx) {
      BlockId Target = G.block(B).Succs[SuccIdx];
      EXPECT_TRUE(L.insertOnEdge(B, SuccIdx).isSubsetOf(L.antIn(Target)))
          << "insertion of a non-anticipated expression on edge " << B
          << "->" << Target << " (unsafe speculation)";
      EXPECT_TRUE(L.earliest(B, SuccIdx).isSubsetOf(L.antIn(Target)));
    }
    EXPECT_TRUE(L.deleteIn(B).isSubsetOf(L.antloc(B)))
        << "deleting a computation that is not locally anticipated";
  }
}

TEST_P(InvariantSweep, AvailabilityAndAnticipabilityBoundaries) {
  FlowGraph G = preparedProgram(GetParam(), true);
  ExprPatternTable Exprs;
  Exprs.build(G);
  if (Exprs.size() == 0)
    return;
  LcmAnalysis L = LcmAnalysis::run(G, Exprs);
  EXPECT_TRUE(L.avIn(G.start()).none());
  EXPECT_TRUE(L.antOut(G.end()).none());
}

INSTANTIATE_TEST_SUITE_P(Seeds, InvariantSweep,
                         ::testing::Range<uint64_t>(0, 15));
