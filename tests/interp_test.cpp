//===- tests/interp_test.cpp - Interpreter tests ---------------*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "interp/Equivalence.h"

#include <gtest/gtest.h>

using namespace am;
using namespace am::test;

TEST(Interpreter, ArithmeticAndInputs) {
  FlowGraph G = parse(R"(
graph {
b0:
  s := a + b
  d := a - b
  p := a * b
  q := a / b
  out(s, d, p, q)
  halt
}
)");
  ExecResult R = run(G, {{"a", 7}, {"b", 2}});
  EXPECT_TRUE(R.finished());
  EXPECT_EQ(R.Output, (std::vector<int64_t>{9, 5, 14, 3}));
  EXPECT_EQ(R.Stats.ExprEvaluations, 4u);
  EXPECT_EQ(R.Stats.AssignExecutions, 4u);
  EXPECT_EQ(R.Stats.TempAssignExecutions, 0u);
}

TEST(Interpreter, UnsetVariablesDefaultToZero) {
  FlowGraph G = parse("graph { b0:\n out(nowhere)\n halt\n }");
  EXPECT_EQ(run(G, {}).Output, (std::vector<int64_t>{0}));
}

TEST(Interpreter, WrappingArithmetic) {
  FlowGraph G = parse(R"(
graph {
b0:
  x := a + 1
  y := a * 2
  out(x, y)
  halt
}
)");
  ExecResult R = run(G, {{"a", INT64_MAX}});
  EXPECT_TRUE(R.finished());
  EXPECT_EQ(R.Output[0], INT64_MIN);
  EXPECT_EQ(R.Output[1], -2);
}

TEST(Interpreter, DivisionByZeroTraps) {
  FlowGraph G = parse(R"(
graph {
b0:
  out(a)
  x := a / b
  out(x)
  halt
}
)");
  ExecResult R = run(G, {{"a", 5}, {"b", 0}});
  EXPECT_EQ(R.St, ExecResult::Status::Trapped);
  EXPECT_EQ(R.Output, (std::vector<int64_t>{5})); // trace up to the trap
  EXPECT_NE(R.TrapMessage.find("division"), std::string::npos);

  EXPECT_TRUE(run(G, {{"a", 5}, {"b", 2}}).finished());
  // INT64_MIN / -1 wraps instead of trapping.
  ExecResult Wrap = run(G, {{"a", INT64_MIN}, {"b", -1}});
  EXPECT_TRUE(Wrap.finished());
  EXPECT_EQ(Wrap.Output[1], INT64_MIN);
}

TEST(Interpreter, ConditionalBranchTakesThenOnTrue) {
  FlowGraph G = parse(R"(
graph {
b0:
  if a >= 10 then b1 else b2
b1:
  out(a)
  goto b3
b2:
  x := 0 - a
  out(x)
  goto b3
b3:
  halt
}
)");
  EXPECT_EQ(run(G, {{"a", 12}}).Output, (std::vector<int64_t>{12}));
  EXPECT_EQ(run(G, {{"a", -4}}).Output, (std::vector<int64_t>{4}));
  EXPECT_EQ(run(G, {{"a", 12}}).Stats.BranchesExecuted, 1u);
}

TEST(Interpreter, AllRelationalOperators) {
  for (auto [Rel, A, B, Expect] :
       {std::tuple<const char *, int64_t, int64_t, int64_t>{"<", 1, 2, 1},
        {"<", 2, 1, 0},
        {"<=", 2, 2, 1},
        {">", 3, 2, 1},
        {">=", 2, 3, 0},
        {"==", 4, 4, 1},
        {"!=", 4, 4, 0}}) {
    std::string Src = std::string("graph { b0:\n if a ") + Rel +
                      " b then b1 else b2\nb1:\n x := 1\n goto b3\nb2:\n "
                      "x := 0\n goto b3\nb3:\n out(x)\n halt\n }";
    FlowGraph G = parse(Src);
    EXPECT_EQ(run(G, {{"a", A}, {"b", B}}).Output[0], Expect)
        << Rel << " " << A << " " << B;
  }
}

TEST(Interpreter, StepLimitStopsInfiniteLoops) {
  FlowGraph Loop = parse(R"(
graph {
b0:
  goto b1
b1:
  i := i + 1
  br b1 b2
b2:
  halt
}
)");
  Interpreter::Options Opts;
  Opts.MaxSteps = 100;
  // Seed chosen arbitrarily; with MaxSteps=100 the loop either exits fast
  // or hits the limit — both are legal outcomes, never a hang.
  ExecResult R = Interpreter::execute(Loop, {}, 12345, Opts);
  EXPECT_TRUE(R.St == ExecResult::Status::Finished ||
              R.St == ExecResult::Status::StepLimit);
}

TEST(Interpreter, NondetIsSeedDeterministic) {
  FlowGraph G = parse(R"(
program {
  i := 0;
  while (i < 6) {
    choose { x := x + 1; } or { x := x * 2; }
    i := i + 1;
  }
  out(x);
}
)");
  for (uint64_t Seed : {0ull, 7ull, 99ull}) {
    ExecResult A = run(G, {{"x", 1}}, Seed);
    ExecResult B = run(G, {{"x", 1}}, Seed);
    EXPECT_EQ(A.Output, B.Output);
  }
  // Different seeds eventually differ.
  bool Differs = false;
  ExecResult Base = run(G, {{"x", 1}}, 0);
  for (uint64_t Seed = 1; Seed < 20 && !Differs; ++Seed)
    Differs = run(G, {{"x", 1}}, Seed).Output != Base.Output;
  EXPECT_TRUE(Differs);
}

TEST(Interpreter, CountsTemporariesSeparately) {
  FlowGraph G = parse(R"(
graph {
temp h1
b0:
  h1 := a + b
  x := h1
  out(x)
  halt
}
)");
  ExecResult R = run(G, {{"a", 1}, {"b", 2}});
  EXPECT_EQ(R.Stats.AssignExecutions, 2u);
  EXPECT_EQ(R.Stats.TempAssignExecutions, 1u);
  EXPECT_EQ(R.Stats.ExprEvaluations, 1u);
}

TEST(Interpreter, BranchConditionOperandEvaluationsCount) {
  FlowGraph G = parse(R"(
graph {
b0:
  if a + b > c + d then b1 else b2
b1:
  goto b2
b2:
  halt
}
)");
  EXPECT_EQ(run(G, {}).Stats.ExprEvaluations, 2u);
}

TEST(Equivalence, DetectsDifferentTraces) {
  FlowGraph A = parse("graph { b0:\n out(x)\n halt\n }");
  FlowGraph B = parse("graph { b0:\n x := 1\n out(x)\n halt\n }");
  auto Rep = checkEquivalent(A, B, {});
  EXPECT_FALSE(Rep.Equivalent);
  EXPECT_NE(Rep.Detail.find("different output"), std::string::npos);
}

TEST(Equivalence, TrapVersusFinishIsInequivalent) {
  FlowGraph A = parse("graph { b0:\n x := 1 / 0\n halt\n }");
  FlowGraph B = parse("graph { b0:\n x := 1\n halt\n }");
  EXPECT_FALSE(checkEquivalent(A, B, {}).Equivalent);
}

TEST(Equivalence, BothTrapWithPrefixTracesIsEquivalent) {
  // Code motion may move a trapping computation above an out().
  FlowGraph A = parse("graph { b0:\n out(a)\n x := 1 / 0\n halt\n }");
  FlowGraph B = parse("graph { b0:\n x := 1 / 0\n out(a)\n halt\n }");
  EXPECT_TRUE(checkEquivalent(A, B, {{"a", 3}}).Equivalent);
}
