//===- tests/remarks_test.cpp - Optimization remark subsystem ------------===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
//
// Covers the remark sink and provenance DAG, the remark/stat coherence
// contract (one Eliminate remark per am.eliminated tick, one DeleteInit
// per flush.inits_deleted, ...), the terminal-remark uniqueness property
// (every instruction that leaves the program is accounted for by exactly
// one terminal remark), the remark verifier over the paper's figures and
// a random corpus, and the zero-observable-effect guarantee (collection
// never changes the optimized program).
//
//===----------------------------------------------------------------------===//

#include "figures/PaperFigures.h"
#include "gen/RandomProgram.h"
#include "ir/InstrNumbering.h"
#include "ir/Printer.h"
#include "support/Json.h"
#include "support/Remarks.h"
#include "support/Stats.h"
#include "transform/UniformEmAm.h"
#include "verify/RemarkVerifier.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

using namespace am;
using namespace am::remarks;

namespace {

/// The paper figures the remark tests sweep (program builders).
const std::vector<std::pair<const char *, FlowGraph (*)()>> &figureSet() {
  static const std::vector<std::pair<const char *, FlowGraph (*)()>> Figures = {
      {"figure1a", figure1a}, {"figure2a", figure2a},   {"figure4", figure4},
      {"figure7", figure7},   {"figure8", figure8},     {"figure10a", figure10a},
      {"figure16", figure16}, {"figure18b", figure18b},
  };
  return Figures;
}

/// Runs the uniform pipeline on \p G with collection on and a primed
/// sink; returns the optimized graph with the sink left populated.
FlowGraph runCollected(const FlowGraph &G) {
  FlowGraph Input = G;
  Sink::get().clear();
  ensureInstrIds(Input);
  return runUniformEmAm(Input);
}

/// Every instruction id present in \p G.
std::set<uint32_t> idsIn(const FlowGraph &G) {
  std::set<uint32_t> Ids;
  for (BlockId B = 0; B < G.numBlocks(); ++B)
    for (const Instr &I : G.block(B).Instrs)
      if (I.Id != 0)
        Ids.insert(I.Id);
  return Ids;
}

} // namespace

TEST(RemarksSink, DisabledSinkDropsEverything) {
  Sink::get().clear();
  ASSERT_FALSE(Sink::get().enabled());
  Remark R;
  R.K = Kind::Eliminate;
  R.InstrId = 7;
  Sink::get().add(R);
  EXPECT_EQ(Sink::get().size(), 0u);

  // With collection off the pipeline assigns no ids and emits no remarks.
  FlowGraph Out = runUniformEmAm(figure4());
  EXPECT_EQ(Sink::get().size(), 0u);
  EXPECT_TRUE(idsIn(Out).empty());
}

TEST(RemarksSink, CollectsAndCountsByKind) {
  CollectionScope On;
  Sink::get().clear();
  Remark A;
  A.K = Kind::Eliminate;
  A.InstrId = Sink::get().freshId();
  A.fact("N-REDUNDANT", "1");
  Sink::get().add(A);
  Remark B;
  B.K = Kind::Hoist;
  B.Act = Action::Insert;
  B.InstrId = Sink::get().freshId();
  Sink::get().add(B);
  EXPECT_EQ(Sink::get().size(), 2u);
  EXPECT_EQ(Sink::get().countKind(Kind::Eliminate), 1u);
  EXPECT_EQ(Sink::get().countKind(Kind::Hoist), 1u);
  EXPECT_EQ(Sink::get().countKind(Kind::SinkInit), 0u);
  EXPECT_EQ(Sink::get().remarks()[0].factValue("N-REDUNDANT"), "1");
  EXPECT_EQ(Sink::get().remarks()[0].factValue("missing"), "");

  // clear() resets the id counter so reruns number deterministically.
  Sink::get().clear();
  EXPECT_EQ(Sink::get().size(), 0u);
  EXPECT_EQ(Sink::get().freshId(), 1u);
}

TEST(RemarksSink, PassAndRoundContextStamped) {
  CollectionScope On;
  Sink::get().clear();
  {
    PassScope Pass("rae");
    Sink::get().setRound(3);
    Remark R;
    R.K = Kind::Eliminate;
    Sink::get().add(R);
    Sink::get().setRound(0);
  }
  ASSERT_EQ(Sink::get().size(), 1u);
  EXPECT_EQ(Sink::get().remarks()[0].Pass, "rae");
  EXPECT_EQ(Sink::get().remarks()[0].Round, 3u);
}

TEST(RemarksSink, JsonPayloadValidates) {
  CollectionScope On;
  runCollected(figure4());
  ASSERT_GT(Sink::get().size(), 0u);
  std::string Err;
  EXPECT_TRUE(json::validate(Sink::get().toJsonString(), &Err)) << Err;
}

TEST(RemarksCoherence, CountsMatchStatCountersOnFigures) {
  CollectionScope On;
  for (const auto &[Name, Build] : figureSet()) {
    stats::Registry::get().resetAll();
    Sink::get().clear();
    FlowGraph Input = Build();
    ensureInstrIds(Input);
    runUniformEmAm(Input);

    const stats::Counter *Elim =
        stats::Registry::get().findCounter("am.eliminated");
    const stats::Counter *Deleted =
        stats::Registry::get().findCounter("flush.inits_deleted");
    const stats::Counter *Sunk =
        stats::Registry::get().findCounter("flush.inits_sunk");
    EXPECT_EQ(Sink::get().countKind(Kind::Eliminate), Elim ? Elim->get() : 0)
        << Name;
    EXPECT_EQ(Sink::get().countKind(Kind::DeleteInit),
              Deleted ? Deleted->get() : 0)
        << Name;
    EXPECT_EQ(Sink::get().countKind(Kind::SinkInit), Sunk ? Sunk->get() : 0)
        << Name;
  }
}

TEST(RemarksCoherence, CountsMatchStatCountersOnCorpus) {
  CollectionScope On;
  for (uint64_t Seed = 0; Seed < 25; ++Seed) {
    stats::Registry::get().resetAll();
    Sink::get().clear();
    FlowGraph Input = generateStructuredProgram(Seed);
    ensureInstrIds(Input);
    runUniformEmAm(Input);

    const stats::Counter *Elim =
        stats::Registry::get().findCounter("am.eliminated");
    const stats::Counter *Deleted =
        stats::Registry::get().findCounter("flush.inits_deleted");
    EXPECT_EQ(Sink::get().countKind(Kind::Eliminate), Elim ? Elim->get() : 0)
        << "seed " << Seed;
    EXPECT_EQ(Sink::get().countKind(Kind::DeleteInit),
              Deleted ? Deleted->get() : 0)
        << "seed " << Seed;
  }
}

// Every assignment that enters or is created by the pipeline either
// survives to the output or is the subject of *exactly one* terminal
// remark — nothing disappears unexplained, nothing is deleted twice.
TEST(RemarksProperty, EveryDeletedIdHasExactlyOneTerminalRemark) {
  CollectionScope On;
  for (uint64_t Seed = 0; Seed < 120; ++Seed) {
    Sink::get().clear();
    FlowGraph Input = generateStructuredProgram(Seed);
    ensureInstrIds(Input);
    FlowGraph Out = runUniformEmAm(Input);

    // Universe: input assignments that survive normalization (skips and
    // `x := x` are deleted by removeSkips without remarks) plus every id
    // the remarks created.
    std::set<uint32_t> Universe;
    for (BlockId B = 0; B < Input.numBlocks(); ++B)
      for (const Instr &I : Input.block(B).Instrs)
        if (I.isAssign() && !I.Rhs.isVarAtom(I.Lhs))
          Universe.insert(I.Id);
    std::vector<Remark> All = Sink::get().remarks();
    for (const Remark &R : All) {
      for (uint32_t New : R.NewIds)
        Universe.insert(New);
      if (R.Act == Action::Insert || R.K == Kind::SinkInit)
        Universe.insert(R.InstrId);
    }

    std::map<uint32_t, unsigned> TerminalCount;
    for (const Remark &R : All)
      if (R.Terminal)
        ++TerminalCount[R.InstrId];

    std::set<uint32_t> Surviving = idsIn(Out);
    for (uint32_t Id : Universe) {
      unsigned N = TerminalCount.count(Id) ? TerminalCount[Id] : 0;
      if (Surviving.count(Id))
        EXPECT_EQ(N, 0u) << "seed " << Seed << ": surviving id " << Id
                         << " has a terminal remark";
      else
        EXPECT_EQ(N, 1u) << "seed " << Seed << ": deleted id " << Id
                         << " has " << N << " terminal remarks";
    }
  }
}

TEST(RemarksProvenance, DecomposeLinksParentToChildren) {
  CollectionScope On;
  runCollected(figure4());
  std::vector<Remark> All = Sink::get().remarks();
  Provenance Prov = Provenance::build(All);

  // Find a decompose remark and check the DAG edges both ways.
  bool Found = false;
  for (const Remark &R : All) {
    if (R.K != Kind::Decompose || R.NewIds.empty())
      continue;
    Found = true;
    const Provenance::Node *Parent = Prov.node(R.InstrId);
    ASSERT_NE(Parent, nullptr);
    for (uint32_t New : R.NewIds) {
      EXPECT_NE(std::find(Parent->Children.begin(), Parent->Children.end(),
                          New),
                Parent->Children.end());
      const Provenance::Node *Child = Prov.node(New);
      ASSERT_NE(Child, nullptr);
      EXPECT_NE(std::find(Child->Parents.begin(), Child->Parents.end(),
                          R.InstrId),
                Child->Parents.end());
      // The family of the child contains the parent and vice versa.
      std::vector<uint32_t> Family = Prov.family(New);
      EXPECT_TRUE(std::binary_search(Family.begin(), Family.end(), R.InstrId));
    }
  }
  EXPECT_TRUE(Found);
}

TEST(RemarksProvenance, ExplainRendersLineage) {
  CollectionScope On;
  FlowGraph Out = runCollected(figure4());
  std::vector<Remark> All = Sink::get().remarks();
  Provenance Prov = Provenance::build(All);

  // h1's initialization is hoisted and finally sunk: its ids must exist
  // and the rendered chain must cite the justifying predicates.
  std::vector<uint32_t> Ids = Prov.idsForVar("h1", All);
  ASSERT_FALSE(Ids.empty());
  std::string Text = explainId(Ids.front(), All, Prov);
  EXPECT_NE(Text.find("lineage of instr"), std::string::npos);
  EXPECT_NE(Text.find("because:"), std::string::npos);
}

TEST(RemarksVerifier, FiguresReplayClean) {
  for (const auto &[Name, Build] : figureSet()) {
    RemarkVerifyReport Report = verifyUniformRemarks(Build());
    EXPECT_TRUE(Report.ok()) << Name << ": "
                             << (Report.Failures.empty()
                                     ? ""
                                     : Report.Failures.front());
    EXPECT_GT(Report.Checked, 0u) << Name;
    // The instrumented replay must produce the same program as the
    // uninstrumented pipeline.
    EXPECT_EQ(printGraph(Report.Output), printGraph(runUniformEmAm(Build())));
  }
}

TEST(RemarksVerifier, RandomCorpusReplaysClean) {
  unsigned Checked = 0;
  for (uint64_t Seed = 0; Seed < 110; ++Seed) {
    FlowGraph G = generateStructuredProgram(Seed);
    RemarkVerifyReport Report = verifyUniformRemarks(G);
    Checked += Report.Checked;
    EXPECT_TRUE(Report.ok())
        << "seed " << Seed << ": "
        << (Report.Failures.empty() ? "" : Report.Failures.front());
  }
  EXPECT_GT(Checked, 0u);
}

// Collection must never change what the optimizer produces: the printed
// output with remarks on is byte-identical to the output with them off.
TEST(RemarksZeroCost, CollectionDoesNotPerturbOutput) {
  for (uint64_t Seed = 0; Seed < 20; ++Seed) {
    FlowGraph G = generateStructuredProgram(Seed);
    std::string Plain = printGraph(runUniformEmAm(G));
    std::string Collected;
    {
      CollectionScope On;
      Collected = printGraph(runCollected(G));
    }
    EXPECT_EQ(Plain, Collected) << "seed " << Seed;
  }
}
