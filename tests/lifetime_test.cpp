//===- tests/lifetime_test.cpp - Lifetime metric & BCM tests ---*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the live-range metrics (the quantity of Theorem 5.4) and the
/// busy-code-motion baseline: BCM must match LCM (and the uniform
/// algorithm) in expression evaluations while paying longer temporary
/// lifetimes — the classic busy-vs-lazy contrast of refs [15, 16].
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "analysis/Lifetime.h"
#include "figures/PaperFigures.h"
#include "gen/RandomProgram.h"
#include "interp/Equivalence.h"
#include "transform/BusyCodeMotion.h"
#include "transform/LazyCodeMotion.h"
#include "transform/UniformEmAm.h"

#include <gtest/gtest.h>

using namespace am;
using namespace am::test;

TEST(Lifetime, CountsLiveTempPoints) {
  FlowGraph G = parse(R"(
graph {
temp h1
b0:
  h1 := a + b
  c := 1
  x := h1
  out(x, c)
  halt
}
)");
  LifetimeStats S = computeLifetimeStats(G);
  // h1 live after its def, across c := 1, up to its use: 2 points
  // (before c := 1 and before x := h1).
  EXPECT_EQ(S.TempLifetimePoints, 2u);
  EXPECT_EQ(S.TempAssignments, 1u);
  EXPECT_EQ(S.MaxLiveTemps, 1u);
  EXPECT_GT(S.TotalLifetimePoints, S.TempLifetimePoints);
}

TEST(Lifetime, NoTempsMeansZero) {
  LifetimeStats S = computeLifetimeStats(figure4());
  EXPECT_EQ(S.TempLifetimePoints, 0u);
  EXPECT_EQ(S.TempAssignments, 0u);
}

TEST(Lifetime, LazyPlacementShortensLifetimes) {
  // The init right before the use has a shorter live range than the init
  // at the block entry.
  FlowGraph Busy = parse(R"(
graph {
temp h1
b0:
  h1 := a + b
  c := 1
  d := 2
  x := h1
  out(x, c, d)
  halt
}
)");
  FlowGraph Lazy = parse(R"(
graph {
temp h1
b0:
  c := 1
  d := 2
  h1 := a + b
  x := h1
  out(x, c, d)
  halt
}
)");
  EXPECT_GT(computeLifetimeStats(Busy).TempLifetimePoints,
            computeLifetimeStats(Lazy).TempLifetimePoints);
}

TEST(Bcm, DiamondPlacesEarliest) {
  FlowGraph G = parse(R"(
graph {
b0:
  br b1 b2
b1:
  x := a + b
  goto b3
b2:
  goto b3
b3:
  y := a + b
  out(x, y)
  halt
}
)");
  FlowGraph Bcm = runBusyCodeMotion(G);
  for (uint64_t Seed = 0; Seed < 8; ++Seed) {
    auto Rep = checkEquivalent(G, Bcm, {{"a", 1}, {"b", 2}}, Seed);
    ASSERT_TRUE(Rep.Equivalent) << Rep.Detail;
    // One evaluation per path (optimal).
    EXPECT_EQ(Rep.Rhs.Stats.ExprEvaluations, 1u);
  }
}

TEST(Bcm, HoistsIntoStartWhenAnticipated) {
  FlowGraph G = parse(R"(
graph {
b0:
  c := 1
  br b1 b2
b1:
  x := a + b
  goto b3
b2:
  y := a + b
  goto b3
b3:
  out(x, y, c)
  halt
}
)");
  FlowGraph Bcm = runBusyCodeMotion(G);
  // a+b is anticipated at the entry: BCM computes it in b0 (earliest).
  EXPECT_GE(countComputations(Bcm, "a + b"), 1u);
  EXPECT_EQ(countInBlock(Bcm, Bcm.start(), "h1 := a + b") +
                countInBlock(Bcm, Bcm.start(), "h1_ := a + b"),
            1u)
      << printGraph(Bcm);
  for (uint64_t Seed = 0; Seed < 4; ++Seed) {
    auto Rep = checkEquivalent(G, Bcm, {{"a", 3}, {"b", 4}}, Seed);
    ASSERT_TRUE(Rep.Equivalent) << Rep.Detail;
  }
}

TEST(Bcm, RespectsDownSafety) {
  // Not anticipated on the exit path: must not hoist above the loop test.
  FlowGraph G = parse(R"(
program {
  i := 0;
  while (i < n) {
    x := a + b;
    i := i + 1;
  }
  out(x, i);
}
)");
  FlowGraph Bcm = runBusyCodeMotion(G);
  for (int64_t N : {0, 3}) {
    auto Rep = checkEquivalent(G, Bcm, {{"n", N}, {"a", 1}, {"b", 2}});
    ASSERT_TRUE(Rep.Equivalent) << Rep.Detail;
    // n = 0: zero evaluations — nothing was speculated.
    if (N == 0) {
      EXPECT_EQ(Rep.Rhs.Stats.ExprEvaluations, 0u);
    }
  }
}

class BcmSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BcmSweep, MatchesLcmEvaluationsWithLongerLifetimes) {
  FlowGraph G = generateStructuredProgram(GetParam());
  FlowGraph Bcm = runBusyCodeMotion(G);
  FlowGraph Lcm = runLazyCodeMotion(G);

  for (uint64_t Run = 0; Run < 3; ++Run) {
    std::unordered_map<std::string, int64_t> In = {
        {"v0", int64_t(Run)}, {"v1", -1}, {"v2", 6}};
    auto RepB = checkEquivalent(G, Bcm, In, Run);
    ASSERT_TRUE(RepB.Equivalent)
        << RepB.Detail << " seed " << GetParam() << "\n" << printGraph(Bcm);
    auto RunLcm = Interpreter::execute(Lcm, In, Run);
    // Busy and lazy placement are computationally equivalent.
    EXPECT_EQ(RepB.Rhs.Stats.ExprEvaluations, RunLcm.Stats.ExprEvaluations)
        << "seed " << GetParam();
  }
  // Lazy placement never has longer temporary live ranges than busy.
  EXPECT_LE(computeLifetimeStats(Lcm).TempLifetimePoints,
            computeLifetimeStats(Bcm).TempLifetimePoints)
      << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, BcmSweep, ::testing::Range<uint64_t>(0, 25));
