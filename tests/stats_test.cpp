//===- tests/stats_test.cpp - Stats registry, JSON and tracing -*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//

#include "support/Json.h"
#include "support/Remarks.h"
#include "support/Stats.h"
#include "support/Trace.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <thread>

using namespace am;
using namespace am::stats;

namespace am::test {
// Defined in stats_disabled_helper.cpp, which is compiled with
// -DAM_DISABLE_STATS.
void bumpCompiledOutStats();
bool compiledOutRemarksEnabled();
} // namespace am::test

//===----------------------------------------------------------------------===//
// Counters, gauges, timers
//===----------------------------------------------------------------------===//

TEST(Stats, CounterAccumulatesAndResets) {
  Counter &C = Registry::get().counter("test.counter_semantics");
  C.reset();
  EXPECT_EQ(C.get(), 0u);
  C.add(1);
  C.add(41);
  EXPECT_EQ(C.get(), 42u);
  C.reset();
  EXPECT_EQ(C.get(), 0u);
}

TEST(Stats, RegistryReturnsTheSameInstrumentForTheSameName) {
  Counter &A = Registry::get().counter("test.same_name");
  Counter &B = Registry::get().counter("test.same_name");
  EXPECT_EQ(&A, &B);
  A.reset();
  A.add(3);
  EXPECT_EQ(B.get(), 3u);
  // References stay valid (deque storage) as more instruments register.
  for (int Idx = 0; Idx < 100; ++Idx)
    Registry::get().counter("test.churn." + std::to_string(Idx));
  EXPECT_EQ(A.get(), 3u);
}

TEST(Stats, MacrosResolveOnceAndIncrement) {
  AM_STAT_COUNTER(Ctr, "test.macro_counter");
  Ctr.reset();
  for (int Idx = 0; Idx < 10; ++Idx)
    AM_STAT_INC(Ctr);
  AM_STAT_ADD(Ctr, 32);
  EXPECT_EQ(Registry::get().counterValue("test.macro_counter"), 42u);
}

TEST(Stats, GaugeIsLastWriteWins) {
  AM_STAT_GAUGE(Gauge, "test.gauge");
  AM_STAT_SET(Gauge, 17);
  AM_STAT_SET(Gauge, -4);
  EXPECT_EQ(Registry::get().findGauge("test.gauge")->get(), -4);
}

TEST(Stats, TimerRecordsCountTotalMinMaxAndBuckets) {
  Timer &T = Registry::get().timer("test.timer_semantics");
  T.reset();
  T.record(100);  // log2 bucket 6
  T.record(1000); // log2 bucket 9
  T.record(10);   // log2 bucket 3
  EXPECT_EQ(T.count(), 3u);
  EXPECT_EQ(T.totalNs(), 1110u);
  EXPECT_EQ(T.minNs(), 10u);
  EXPECT_EQ(T.maxNs(), 1000u);
  EXPECT_EQ(T.bucket(6), 1u);
  EXPECT_EQ(T.bucket(9), 1u);
  EXPECT_EQ(T.bucket(3), 1u);
  T.reset();
  EXPECT_EQ(T.count(), 0u);
  EXPECT_EQ(T.minNs(), 0u); // empty timer reports 0, not UINT64_MAX
}

TEST(Stats, TimerScopeMeasuresElapsedTime) {
  Timer &T = Registry::get().timer("test.timer_scope");
  T.reset();
  Registry::get().setEnabled(true);
  {
    TimerScope Scope(T);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(T.count(), 1u);
  EXPECT_GE(T.totalNs(), 1000000u);
}

TEST(Stats, RuntimeDisabledTimerScopeIsANoOp) {
  Timer &T = Registry::get().timer("test.timer_disabled");
  T.reset();
  Registry::get().setEnabled(false);
  {
    TimerScope Scope(T);
  }
  Registry::get().setEnabled(true);
  EXPECT_EQ(T.count(), 0u);
}

TEST(Stats, TimerPercentilesFromLog2Buckets) {
  Timer &T = Registry::get().timer("test.timer_percentiles");
  T.reset();
  EXPECT_EQ(T.percentileNs(0.5), 0u); // empty timer

  T.record(10);   // bucket 3: [8, 16)
  T.record(100);  // bucket 6: [64, 128)
  T.record(1000); // bucket 9: [512, 1024)
  // Nearest rank: p50 is the 2nd of 3 samples — bucket 6's midpoint.
  EXPECT_EQ(T.percentileNs(0.5), 96u);
  // p95 is the 3rd sample — bucket 9's midpoint.
  EXPECT_EQ(T.percentileNs(0.95), 768u);
  // Q=0 clamps to the first sample; Q=1 is the last.
  EXPECT_EQ(T.percentileNs(0.0), 12u);
  EXPECT_EQ(T.percentileNs(1.0), 768u);

  T.reset();
  T.record(0); // values 0 and 1 land in bucket 0: [0, 2)
  EXPECT_EQ(T.percentileNs(0.5), 1u);
}

TEST(Stats, DumpsCarryPercentiles) {
  Registry::get().resetAll();
  Timer &T = Registry::get().timer("test.percentile_dump");
  T.record(100);
  std::string J = Registry::get().dumpJsonString();
  std::string Error;
  EXPECT_TRUE(json::validate(J, &Error)) << Error;
  EXPECT_NE(J.find("\"p50_ns\":96"), std::string::npos) << J;
  EXPECT_NE(J.find("\"p95_ns\":96"), std::string::npos) << J;
  std::ostringstream OS;
  Registry::get().dumpText(OS);
  EXPECT_NE(OS.str().find("p50 ~96 ns"), std::string::npos) << OS.str();
}

TEST(Stats, CompiledOutMacrosRegisterNothing) {
  am::test::bumpCompiledOutStats();
  EXPECT_EQ(Registry::get().findCounter("test.compiled_out_counter"),
            nullptr);
  EXPECT_EQ(Registry::get().findGauge("test.compiled_out_gauge"), nullptr);
  EXPECT_EQ(Registry::get().findTimer("test.compiled_out_timer"), nullptr);
  EXPECT_EQ(Registry::get().counterValue("test.compiled_out_counter"), 0u);
}

TEST(Stats, CompiledOutRemarkMacrosAreInert) {
  // Even with the process-wide sink enabled, a TU built with
  // -DAM_DISABLE_STATS sees AM_REMARKS_ENABLED() == false.
  remarks::CollectionScope On;
  EXPECT_FALSE(am::test::compiledOutRemarksEnabled());
}

//===----------------------------------------------------------------------===//
// Dumps
//===----------------------------------------------------------------------===//

TEST(Stats, TextDumpListsInstrumentsAlphabetically) {
  Registry::get().counter("test.dump.b").reset();
  Registry::get().counter("test.dump.a").add(0);
  std::ostringstream OS;
  Registry::get().dumpText(OS);
  std::string Text = OS.str();
  size_t PosA = Text.find("test.dump.a");
  size_t PosB = Text.find("test.dump.b");
  ASSERT_NE(PosA, std::string::npos);
  ASSERT_NE(PosB, std::string::npos);
  EXPECT_LT(PosA, PosB);
}

TEST(Stats, JsonDumpIsValidAndRoundTripsValues) {
  Counter &C = Registry::get().counter("test.json.counter");
  C.reset();
  C.add(1234);
  Registry::get().timer("test.json.timer").record(512);
  std::string J = Registry::get().dumpJsonString();
  std::string Error;
  EXPECT_TRUE(json::validate(J, &Error)) << Error;
  // The dump carries the exact value and the timer sub-document.
  EXPECT_NE(J.find("\"test.json.counter\":1234"), std::string::npos) << J;
  EXPECT_NE(J.find("\"test.json.timer\""), std::string::npos);
  EXPECT_NE(J.find("\"log2_buckets\""), std::string::npos);
}

TEST(Stats, ResetAllZeroesEverything) {
  Counter &C = Registry::get().counter("test.resetall.counter");
  Timer &T = Registry::get().timer("test.resetall.timer");
  C.add(5);
  T.record(99);
  Registry::get().resetAll();
  EXPECT_EQ(C.get(), 0u);
  EXPECT_EQ(T.count(), 0u);
}

//===----------------------------------------------------------------------===//
// JSON writer / validator
//===----------------------------------------------------------------------===//

TEST(Json, WriterProducesValidNestedDocuments) {
  std::string Out;
  json::Writer W(Out);
  W.beginObject();
  W.key("s").value("a \"quoted\"\nstring");
  W.key("n").value(int64_t(-7));
  W.key("u").value(uint64_t(18446744073709551615ull));
  W.key("d").value(1.5);
  W.key("b").value(true);
  W.key("arr").beginArray().value(int64_t(1)).value("two").endArray();
  W.key("nested").beginObject().key("empty").beginArray().endArray().endObject();
  W.endObject();
  std::string Error;
  EXPECT_TRUE(json::validate(Out, &Error)) << Error << "\n" << Out;
  EXPECT_NE(Out.find("\\\"quoted\\\"\\n"), std::string::npos);
  EXPECT_NE(Out.find("18446744073709551615"), std::string::npos);
}

TEST(Json, EscapesControlCharacters) {
  // Note the split literal: "\x01b" would greedily parse as \x1b.
  std::string Q = json::quoted(std::string("a\x01" "b\tc"));
  EXPECT_EQ(Q, "\"a\\u0001b\\tc\"");
  EXPECT_TRUE(json::validate(Q));
}

TEST(Json, ValidatorAcceptsRfc8259Values) {
  for (const char *Good :
       {"{}", "[]", "null", "true", "-0.5e+10", "\"x\"",
        "{\"a\":[1,2,{\"b\":null}],\"c\":\"\\u0041\"}", "  [1]  "})
    EXPECT_TRUE(json::validate(Good)) << Good;
}

TEST(Json, ValidatorRejectsMalformedInput) {
  for (const char *Bad :
       {"", "{", "}", "[1,]", "{\"a\"}", "{\"a\":}", "{a:1}", "01", "1.",
        "\"unterminated", "[1] trailing", "nul", "\"bad\\escape\""})
    EXPECT_FALSE(json::validate(Bad)) << Bad;
}

//===----------------------------------------------------------------------===//
// Tracer
//===----------------------------------------------------------------------===//

TEST(Trace, DisabledByDefaultAndSpansAreInert) {
  ASSERT_FALSE(trace::enabled());
  {
    trace::TraceSpan Span("never.recorded");
    Span.arg("k", 1);
    EXPECT_FALSE(Span.live());
  }
  trace::start();
  std::string J = trace::stopToJson();
  EXPECT_EQ(J.find("never.recorded"), std::string::npos);
}

TEST(Trace, CollectsSpansAndInstantsAsChromeTraceJson) {
  trace::start();
  EXPECT_TRUE(trace::enabled());
  {
    trace::TraceSpan Span("test.span");
    Span.arg("bits", 64);
    Span.arg("mode", "round-robin");
    trace::instant("test.instant", {{"round", 3}});
  }
  std::string J = trace::stopToJson();
  EXPECT_FALSE(trace::enabled());

  std::string Error;
  EXPECT_TRUE(json::validate(J, &Error)) << Error << "\n" << J;
  EXPECT_NE(J.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(J.find("\"name\":\"test.span\""), std::string::npos);
  EXPECT_NE(J.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(J.find("\"name\":\"test.instant\""), std::string::npos);
  EXPECT_NE(J.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(J.find("\"bits\":64"), std::string::npos);
  EXPECT_NE(J.find("\"mode\":\"round-robin\""), std::string::npos);
  EXPECT_NE(J.find("\"round\":3"), std::string::npos);
}

TEST(Trace, StopToFileWritesTheJson) {
  trace::start();
  {
    trace::TraceSpan Span("test.file_span");
  }
  std::string Path = testing::TempDir() + "am_trace_test.json";
  ASSERT_TRUE(trace::stopToFile(Path));
  std::ifstream In(Path);
  ASSERT_TRUE(In.good());
  std::stringstream Buf;
  Buf << In.rdbuf();
  std::string Error;
  EXPECT_TRUE(json::validate(Buf.str(), &Error)) << Error;
  EXPECT_NE(Buf.str().find("test.file_span"), std::string::npos);
}

TEST(Trace, StartClearsPreviousEvents) {
  trace::start();
  trace::instant("test.stale");
  trace::start(); // restart without stopping
  trace::instant("test.fresh");
  std::string J = trace::stopToJson();
  EXPECT_EQ(J.find("test.stale"), std::string::npos);
  EXPECT_NE(J.find("test.fresh"), std::string::npos);
}

TEST(Trace, SessionWritesFileOnClose) {
  std::string Path = testing::TempDir() + "am_trace_session.json";
  {
    trace::Session S(Path);
    EXPECT_TRUE(S.open());
    EXPECT_TRUE(trace::enabled());
    trace::instant("test.session_event");
    EXPECT_TRUE(S.close());
    EXPECT_FALSE(S.open());
    EXPECT_FALSE(trace::enabled());
    // close() is idempotent: a second call reports failure, not a
    // double write.
    EXPECT_FALSE(S.close());
  }
  std::ifstream In(Path);
  ASSERT_TRUE(In.good());
  std::stringstream Buf;
  Buf << In.rdbuf();
  std::string Error;
  EXPECT_TRUE(json::validate(Buf.str(), &Error)) << Error;
  EXPECT_NE(Buf.str().find("test.session_event"), std::string::npos);
}

TEST(Trace, SessionDestructorFlushes) {
  std::string Path = testing::TempDir() + "am_trace_session_dtor.json";
  {
    trace::Session S(Path);
    trace::instant("test.session_dtor_event");
  } // destructor closes and writes
  EXPECT_FALSE(trace::enabled());
  std::ifstream In(Path);
  ASSERT_TRUE(In.good());
  std::stringstream Buf;
  Buf << In.rdbuf();
  EXPECT_NE(Buf.str().find("test.session_dtor_event"), std::string::npos);
}
