//===- tests/report_disabled_helper.cpp - Recorder w/o stats ---*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
//
// Compiled with -DAM_DISABLE_STATS (see tests/CMakeLists.txt): the
// recorder headers must stay compilable with the stats registry compiled
// out — the hook pattern the transforms use only touches
// RecorderSession::current(), never a stats symbol.  report_test.cpp
// calls the probe below to assert the hook is inert in this TU exactly as
// it is in a stats-enabled one.
//
//===----------------------------------------------------------------------===//

#ifndef AM_DISABLE_STATS
#error "this file must be compiled with -DAM_DISABLE_STATS"
#endif

#include "report/Recorder.h"

namespace am::test {

/// The transforms' hook shape, compiled under AM_DISABLE_STATS: returns
/// whether a session is currently installed.
bool recorderHookFires() {
  if (am::report::RecorderSession *Rec = am::report::RecorderSession::current()) {
    (void)Rec;
    return true;
  }
  return false;
}

} // namespace am::test
