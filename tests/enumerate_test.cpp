//===- tests/enumerate_test.cpp - Exhaustive optimality checks -*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exhaustive bounded-universe verification of Theorem 5.2 on small
/// programs: every reachable member of the EM/AM universe is enumerated,
/// checked semantically equivalent, and shown never to evaluate fewer
/// expressions than the uniform algorithm's result.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "figures/PaperFigures.h"
#include "interp/Equivalence.h"
#include "transform/UniformEmAm.h"
#include "verify/Enumerate.h"

#include <gtest/gtest.h>

using namespace am;
using namespace am::test;

namespace {

/// Enumerates, checks soundness of every member, and asserts the uniform
/// result's per-execution optimality against the whole set.
void expectExhaustivelyOptimal(
    const FlowGraph &G,
    const std::unordered_map<std::string, int64_t> &Inputs,
    unsigned MinMembers) {
  EnumerationResult Universe = enumerateUniverse(G);
  EXPECT_GE(Universe.Members.size(), MinMembers)
      << "suspiciously small universe";
  FlowGraph U = runUniformEmAm(G);
  Interpreter::Options Opts;
  Opts.MaxSteps = 4000;
  for (uint64_t Seed = 0; Seed < 4; ++Seed) {
    auto RunU = Interpreter::execute(U, Inputs, Seed, Opts);
    for (const FlowGraph &Member : Universe.Members) {
      auto Rep = checkEquivalent(G, Member, Inputs, Seed, Opts);
      ASSERT_TRUE(Rep.Equivalent)
          << "unsound universe member:\n" << printGraph(Member)
          << "\n" << Rep.Detail;
      if (!RunU.finished() || !Rep.Rhs.finished())
        continue;
      ASSERT_LE(RunU.Stats.ExprEvaluations, Rep.Rhs.Stats.ExprEvaluations)
          << "a universe member beats the 'optimal' result:\n"
          << printGraph(Member);
    }
  }
}

} // namespace

TEST(Enumerate, CollectsDistinctMembers) {
  FlowGraph G = parse(R"(
graph {
b0:
  x := a + b
  y := a + b
  out(x, y)
  halt
}
)");
  EnumerationResult R = enumerateUniverse(G);
  EXPECT_FALSE(R.Truncated);
  // At least: seed, initialized seed, hoisted/eliminated/flushed variants.
  EXPECT_GE(R.Members.size(), 4u);
  // All members are valid graphs.
  for (const FlowGraph &M : R.Members)
    EXPECT_TRUE(M.validate().empty());
}

TEST(Enumerate, TruncationIsReported) {
  EnumerationOptions Tiny;
  Tiny.MaxStates = 3;
  EnumerationResult R = enumerateUniverse(figure4(), Tiny);
  EXPECT_TRUE(R.Truncated);
  EXPECT_LE(R.Members.size(), 3u);
}

TEST(Enumerate, ExhaustiveOptimalityStraightLine) {
  FlowGraph G = parse(R"(
graph {
b0:
  x := a + b
  c := 1
  y := a + b
  out(x, y, c)
  halt
}
)");
  expectExhaustivelyOptimal(G, {{"a", 2}, {"b", 3}}, 6);
}

TEST(Enumerate, ExhaustiveOptimalityDiamond) {
  FlowGraph G = parse(R"(
graph {
b0:
  br b1 b2
b1:
  x := a + b
  goto b3
b2:
  x := a + b
  goto b3
b3:
  y := a + b
  out(x, y)
  halt
}
)");
  expectExhaustivelyOptimal(G, {{"a", 1}, {"b", 4}}, 8);
}

TEST(Enumerate, ExhaustiveOptimalityFigure8) {
  expectExhaustivelyOptimal(figure8(), {{"x", 1}, {"y", 2}, {"z", 3}}, 10);
}

TEST(Enumerate, ExhaustiveOptimalityFigure10) {
  expectExhaustivelyOptimal(figure10a(), {{"a", 5}, {"b", 6}}, 8);
}

TEST(Enumerate, ExhaustiveOptimalityTinyLoop) {
  FlowGraph G = parse(R"(
graph {
b0:
  goto b1
b1:
  x := a + b
  br b1 b2
b2:
  out(x)
  halt
}
)");
  expectExhaustivelyOptimal(G, {{"a", 3}, {"b", 4}}, 6);
}
