//===- tests/property_test.cpp - Randomized property sweeps ----*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Seeded property sweeps over random programs — the heavy artillery
/// behind the paper's theorems:
///
///  * every transformation preserves semantics (Theorem 5.1);
///  * the uniform algorithm never evaluates more expressions than the
///    original, than EM alone, or than AM alone (Theorem 5.2, dynamic
///    form);
///  * the pipeline is idempotent and the flush leaves nothing to flush;
///  * all of the above also on irreducible control flow.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "gen/RandomProgram.h"
#include "interp/Equivalence.h"
#include "transform/CopyPropagation.h"
#include "transform/FinalFlush.h"
#include "transform/LazyCodeMotion.h"
#include "transform/RestrictedAssignmentMotion.h"
#include "transform/UniformEmAm.h"

#include <gtest/gtest.h>

using namespace am;
using namespace am::test;

namespace {

std::unordered_map<std::string, int64_t> inputsFor(uint64_t Salt) {
  std::unordered_map<std::string, int64_t> In;
  for (unsigned V = 0; V < 8; ++V)
    In["v" + std::to_string(V)] =
        static_cast<int64_t>((Salt * 2654435761u + V * 40503u) % 23) - 11;
  return In;
}

} // namespace

class StructuredSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StructuredSweep, UniformPreservesSemantics) {
  FlowGraph G = generateStructuredProgram(GetParam());
  FlowGraph U = runUniformEmAm(G);
  EXPECT_TRUE(U.validate().empty());
  for (uint64_t Run = 0; Run < 3; ++Run) {
    auto Rep = checkEquivalent(G, U, inputsFor(GetParam() * 3 + Run), Run);
    ASSERT_TRUE(Rep.Equivalent)
        << Rep.Detail << "\nseed " << GetParam() << " run " << Run
        << "\nbefore:\n" << printGraph(G) << "after:\n" << printGraph(U);
  }
}

TEST_P(StructuredSweep, UniformNeverIncreasesExpressionEvaluations) {
  FlowGraph G = generateStructuredProgram(GetParam());
  FlowGraph U = runUniformEmAm(G);
  for (uint64_t Run = 0; Run < 3; ++Run) {
    auto Rep = checkEquivalent(G, U, inputsFor(GetParam() * 7 + Run), Run);
    ASSERT_TRUE(Rep.Equivalent) << Rep.Detail;
    EXPECT_LE(Rep.Rhs.Stats.ExprEvaluations, Rep.Lhs.Stats.ExprEvaluations)
        << "seed " << GetParam() << " run " << Run << "\nafter:\n"
        << printGraph(U);
  }
}

TEST_P(StructuredSweep, UniformBeatsOrTiesEmAndAmAlone) {
  FlowGraph G = generateStructuredProgram(GetParam());
  FlowGraph U = runUniformEmAm(G);
  FlowGraph Em = runLazyCodeMotion(G);
  FlowGraph Am = runAssignmentMotionOnly(G);
  for (uint64_t Run = 0; Run < 2; ++Run) {
    auto In = inputsFor(GetParam() * 11 + Run);
    auto RunU = Interpreter::execute(U, In, Run);
    auto RunEm = Interpreter::execute(Em, In, Run);
    auto RunAm = Interpreter::execute(Am, In, Run);
    ASSERT_TRUE(RunU.finished());
    ASSERT_TRUE(RunEm.finished());
    ASSERT_TRUE(RunAm.finished());
    EXPECT_LE(RunU.Stats.ExprEvaluations, RunEm.Stats.ExprEvaluations)
        << "uniform worse than EM alone, seed " << GetParam();
    EXPECT_LE(RunU.Stats.ExprEvaluations, RunAm.Stats.ExprEvaluations)
        << "uniform worse than AM alone, seed " << GetParam();
  }
}

TEST_P(StructuredSweep, BaselinesPreserveSemantics) {
  FlowGraph G = generateStructuredProgram(GetParam());
  FlowGraph Em = runLazyCodeMotion(G);
  FlowGraph Am = runAssignmentMotionOnly(G);
  FlowGraph Cp = G;
  runCopyPropagation(Cp);
  for (uint64_t Run = 0; Run < 2; ++Run) {
    auto In = inputsFor(GetParam() * 13 + Run);
    EXPECT_TRUE(checkEquivalent(G, Em, In, Run).Equivalent)
        << "LCM broke seed " << GetParam();
    EXPECT_TRUE(checkEquivalent(G, Am, In, Run).Equivalent)
        << "AM-only broke seed " << GetParam();
    EXPECT_TRUE(checkEquivalent(G, Cp, In, Run).Equivalent)
        << "copy propagation broke seed " << GetParam();
  }
}

TEST_P(StructuredSweep, UniformIsIdempotent) {
  FlowGraph Once = runUniformEmAm(generateStructuredProgram(GetParam()));
  FlowGraph Twice = runUniformEmAm(Once);
  EXPECT_TRUE(equivalentModuloTemps(Once, Twice))
      << "seed " << GetParam() << "\nonce:\n" << printGraph(Once)
      << "twice:\n" << printGraph(Twice);
}

TEST_P(StructuredSweep, FlushLeavesNothingToFlush) {
  FlowGraph G = generateStructuredProgram(GetParam());
  UniformOptions Options;
  Options.SimplifyResult = false; // keep block ids stable
  FlowGraph U = runUniformEmAm(G, Options);
  EXPECT_FALSE(runFinalFlush(U)) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, StructuredSweep,
                         ::testing::Range<uint64_t>(0, 40));

class RestrictedSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RestrictedSweep, RestrictedAmIsSoundButNoStrongerThanUnrestricted) {
  GenOptions Opts;
  Opts.TargetStmts = 18; // restricted AM re-analyzes per pattern: keep small
  FlowGraph G = generateStructuredProgram(GetParam(), Opts);
  FlowGraph R = runRestrictedAssignmentMotion(G);
  FlowGraph Am = runAssignmentMotionOnly(G);
  for (uint64_t Run = 0; Run < 2; ++Run) {
    auto In = inputsFor(GetParam() * 17 + Run);
    auto Rep = checkEquivalent(G, R, In, Run);
    ASSERT_TRUE(Rep.Equivalent) << Rep.Detail << " seed " << GetParam();
    auto RunAm = Interpreter::execute(Am, In, Run);
    auto RunR = Interpreter::execute(R, In, Run);
    ASSERT_TRUE(RunAm.finished() && RunR.finished());
    EXPECT_LE(RunAm.Stats.AssignExecutions, RunR.Stats.AssignExecutions)
        << "unrestricted AM must dominate restricted AM, seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RestrictedSweep,
                         ::testing::Range<uint64_t>(0, 10));

class IrreducibleSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IrreducibleSweep, UniformPreservesSemanticsOnArbitraryCfgs) {
  FlowGraph G = generateIrreducibleCfg(GetParam());
  FlowGraph U = runUniformEmAm(G);
  EXPECT_TRUE(U.validate().empty());
  Interpreter::Options Opts;
  Opts.MaxSteps = 3000;
  for (uint64_t Run = 0; Run < 4; ++Run) {
    auto Rep =
        checkEquivalent(G, U, inputsFor(GetParam() * 5 + Run), Run, Opts);
    ASSERT_TRUE(Rep.Equivalent)
        << Rep.Detail << "\nseed " << GetParam() << " run " << Run
        << "\nbefore:\n" << printGraph(G) << "after:\n" << printGraph(U);
  }
}

TEST_P(IrreducibleSweep, AmOnlyPreservesSemanticsOnArbitraryCfgs) {
  FlowGraph G = generateIrreducibleCfg(GetParam());
  FlowGraph Am = runAssignmentMotionOnly(G);
  EXPECT_TRUE(Am.validate().empty());
  Interpreter::Options Opts;
  Opts.MaxSteps = 3000;
  for (uint64_t Run = 0; Run < 4; ++Run) {
    auto Rep =
        checkEquivalent(G, Am, inputsFor(GetParam() * 9 + Run), Run, Opts);
    ASSERT_TRUE(Rep.Equivalent)
        << Rep.Detail << "\nseed " << GetParam() << " run " << Run;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IrreducibleSweep,
                         ::testing::Range<uint64_t>(0, 25));
