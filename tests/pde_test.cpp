//===- tests/pde_test.cpp - Partial dead code elimination tests -*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "gen/RandomProgram.h"
#include "interp/Equivalence.h"
#include "transform/PartialDeadCodeElim.h"
#include "transform/UniformEmAm.h"

#include <gtest/gtest.h>

using namespace am;
using namespace am::test;

TEST(Pde, RemovesTotallyDeadAssignments) {
  FlowGraph G = parse(R"(
graph {
b0:
  x := a + b
  y := 1
  out(y)
  halt
}
)");
  PdeStats Stats = runPartialDeadCodeElim(G);
  EXPECT_EQ(countAssigns(G, "x", "a + b"), 0u);
  EXPECT_EQ(countAssigns(G, "y", "1"), 1u);
  EXPECT_EQ(Stats.Removed, 1);
}

TEST(Pde, CollapsesOverwrittenAssignments) {
  FlowGraph G = parse(R"(
graph {
b0:
  x := 1
  x := 2
  out(x)
  halt
}
)");
  runPartialDeadCodeElim(G);
  EXPECT_EQ(countAssigns(G, "x", "1"), 0u);
  EXPECT_EQ(countAssigns(G, "x", "2"), 1u);
}

TEST(Pde, SinksIntoTheUsingBranchOnly) {
  // x := a+b is dead on the else-path: after PDE it is computed only on
  // the path that prints it ("partially dead" elimination).
  FlowGraph G = parse(R"(
graph {
b0:
  x := a + b
  if c > 0 then b1 else b2
b1:
  out(x)
  goto b3
b2:
  out(c)
  goto b3
b3:
  halt
}
)");
  FlowGraph Before = G;
  G.splitCriticalEdges();
  runPartialDeadCodeElim(G);
  EXPECT_EQ(countAssigns(G, "x", "a + b"), 1u);
  EXPECT_EQ(countInBlock(G, 0, "x := a + b"), 0u) << printGraph(G);
  EXPECT_EQ(countInBlock(G, 1, "x := a + b"), 1u) << printGraph(G);
  for (int64_t C : {-1, 1}) {
    auto Rep = checkEquivalent(Before, G, {{"a", 2}, {"b", 3}, {"c", C}});
    EXPECT_TRUE(Rep.Equivalent) << Rep.Detail;
  }
  // Dynamic win: the else-path no longer evaluates a+b.
  auto ElsePath = run(G, {{"c", -1}});
  EXPECT_EQ(ElsePath.Stats.ExprEvaluations, 0u);
}

TEST(Pde, DoesNotSinkPastUses) {
  FlowGraph G = parse(R"(
graph {
b0:
  x := a + b
  y := x + 1
  out(y, x)
  halt
}
)");
  runPartialDeadCodeElim(G);
  // Order preserved: x's definition still precedes its use.
  EXPECT_EQ(printInstr(G.block(0).Instrs[0], G.Vars), "x := a + b");
  EXPECT_EQ(countAssigns(G, "x", "a + b"), 1u);
}

TEST(Pde, DoesNotSinkOutOfLoops) {
  // The assignment's operand i changes each iteration: the last value is
  // the one used after the loop, and sinking out would be wrong here
  // since s is used by out() inside... keep it simple: semantics hold.
  FlowGraph G = parse(R"(
program {
  i := 0;
  repeat {
    s := i * 2;
    i := i + 1;
  } until (i >= n);
  out(s);
}
)");
  FlowGraph Before = G;
  G.splitCriticalEdges();
  runPartialDeadCodeElim(G);
  EXPECT_TRUE(G.validate().empty());
  for (int64_t N : {0, 1, 5}) {
    auto Rep = checkEquivalent(Before, G, {{"n", N}});
    EXPECT_TRUE(Rep.Equivalent) << Rep.Detail << " n=" << N;
  }
}

TEST(Pde, IsIdempotent) {
  FlowGraph G = parse(R"(
graph {
b0:
  x := a + b
  y := 5
  if c > 0 then b1 else b2
b1:
  out(x)
  goto b3
b2:
  out(y)
  goto b3
b3:
  halt
}
)");
  G.splitCriticalEdges();
  runPartialDeadCodeElim(G);
  FlowGraph Once = G;
  PdeStats Again = runPartialDeadCodeElim(G);
  EXPECT_EQ(Again.Removed, 0);
  EXPECT_TRUE(structurallyEqual(Once, G));
}

class PdeSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PdeSweep, PreservesSemanticsAndNeverAddsWork) {
  FlowGraph G = generateStructuredProgram(GetParam());
  FlowGraph P = G;
  P.splitCriticalEdges();
  runPartialDeadCodeElim(P);
  EXPECT_TRUE(P.validate().empty());
  // Note: the *static* size may grow (sinking duplicates an assignment
  // into sibling branches); the dynamic count below must never grow.
  for (uint64_t Run = 0; Run < 3; ++Run) {
    std::unordered_map<std::string, int64_t> In = {
        {"v0", int64_t(Run) - 1}, {"v1", 4}, {"v2", -7}};
    auto Rep = checkEquivalent(G, P, In, Run);
    ASSERT_TRUE(Rep.Equivalent)
        << Rep.Detail << "\nseed " << GetParam() << "\nbefore:\n"
        << printGraph(G) << "after:\n" << printGraph(P);
    auto RunBefore = Interpreter::execute(G, In, Run);
    auto RunAfter = Interpreter::execute(P, In, Run);
    EXPECT_LE(RunAfter.Stats.AssignExecutions,
              RunBefore.Stats.AssignExecutions)
        << "seed " << GetParam();
  }
}

TEST_P(PdeSweep, ComposesWithUniformEmAm) {
  FlowGraph G = generateStructuredProgram(GetParam());
  FlowGraph U = runUniformEmAm(G);
  FlowGraph UP = U;
  UP.splitCriticalEdges();
  runPartialDeadCodeElim(UP);
  for (uint64_t Run = 0; Run < 2; ++Run) {
    std::unordered_map<std::string, int64_t> In = {{"v0", 2}, {"v3", -5}};
    auto Rep = checkEquivalent(G, UP, In, Run);
    ASSERT_TRUE(Rep.Equivalent) << Rep.Detail << " seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PdeSweep, ::testing::Range<uint64_t>(0, 25));
