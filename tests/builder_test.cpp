//===- tests/builder_test.cpp - GraphBuilder and corner tests --*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "figures/PaperFigures.h"
#include "interp/Equivalence.h"
#include "ir/GraphBuilder.h"
#include "transform/AssignmentHoisting.h"
#include "transform/AssignmentMotion.h"
#include "transform/Initialization.h"
#include "transform/FinalFlush.h"
#include "transform/UniformEmAm.h"

#include <gtest/gtest.h>

using namespace am;
using namespace am::test;

TEST(GraphBuilder, BuildsARunnableLoop) {
  GraphBuilder B;
  BlockId Entry = B.block();
  BlockId Loop = B.block();
  BlockId Exit = B.block();
  B.at(Entry).assign("i", B.atom(0)).assign("s", B.atom(0)).jump(Loop);
  B.at(Loop)
      .assign("s", B.add("s", "i"))
      .assign("i", B.add("i", 1))
      .branch(B.lt("i", "n"), Loop, Exit);
  B.at(Exit).out({"s", "i"}).halt();
  FlowGraph G = B.take();

  EXPECT_TRUE(G.validate().empty());
  EXPECT_EQ(run(G, {{"n", 5}}).Output, (std::vector<int64_t>{10, 5}));
  EXPECT_EQ(run(G, {{"n", 0}}).Output, (std::vector<int64_t>{0, 1}));
}

TEST(GraphBuilder, MatchesParsedEquivalent) {
  GraphBuilder B;
  BlockId B0 = B.block();
  BlockId B1 = B.block();
  B.at(B0).assign("x", B.add("a", "b")).jump(B1);
  B.at(B1).out({"x"}).halt();
  FlowGraph Built = B.take();
  FlowGraph Parsed = parse(R"(
graph {
b0:
  x := a + b
  goto b1
b1:
  out(x)
  halt
}
)");
  EXPECT_TRUE(structurallyEqual(Built, Parsed));
}

TEST(GraphBuilder, ChooseBuildsNondeterministicBranches) {
  GraphBuilder B;
  BlockId B0 = B.block();
  BlockId A1 = B.block();
  BlockId A2 = B.block();
  BlockId End = B.block();
  B.at(B0).choose({A1, A2});
  B.at(A1).assign("x", B.atom(1)).jump(End);
  B.at(A2).assign("x", B.atom(2)).jump(End);
  B.at(End).out({"x"}).halt();
  FlowGraph G = B.take();
  EXPECT_EQ(G.block(B0).Succs.size(), 2u);
  EXPECT_EQ(G.block(B0).branchInstr(), nullptr);
}

TEST(GraphBuilder, OptimizerRunsOnBuiltGraphs) {
  GraphBuilder B;
  BlockId B0 = B.block();
  BlockId B1 = B.block();
  B.at(B0)
      .assign("x", B.add("a", "b"))
      .assign("y", B.add("a", "b"))
      .jump(B1);
  B.at(B1).out({"x", "y"}).halt();
  FlowGraph G = B.take();
  FlowGraph U = runUniformEmAm(G);
  auto Rep = checkEquivalent(G, U, {{"a", 3}, {"b", 4}});
  ASSERT_TRUE(Rep.Equivalent) << Rep.Detail;
  EXPECT_EQ(Rep.Rhs.Stats.ExprEvaluations, 1u);
}

//===----------------------------------------------------------------------===//
// Targeted transformation corners
//===----------------------------------------------------------------------===//

TEST(HoistingCorners, ExitInsertBeforeNeutralBranch) {
  // The candidate below the branch hoists through it; the branch does not
  // block the pattern, so the insertion lands *before* the condition.
  FlowGraph G = parse(R"(
graph {
b0:
  c := 1
  if c > 0 then b1 else b2
b1:
  x := a + b
  goto b3
b2:
  x := a + b
  goto b3
b3:
  out(x)
  halt
}
)");
  FlowGraph Am = runAssignmentMotionOnly(G);
  // x := a+b sits in b0 before the condition, once.
  EXPECT_EQ(countAssigns(Am, "x", "a + b"), 1u);
  ASSERT_GE(Am.block(0).Instrs.size(), 2u);
  const auto &Instrs = Am.block(0).Instrs;
  EXPECT_TRUE(Instrs.back().isBranch());
  EXPECT_EQ(printInstr(Instrs[Instrs.size() - 2], Am.Vars), "x := a + b");
}

TEST(HoistingCorners, ExitInsertAfterBlockingBranchGoesToSuccessors) {
  // The branch *uses* x, so x := a+b cannot cross it: the motion stops at
  // the successors' entries and the assignment stays duplicated.
  FlowGraph G = parse(R"(
graph {
b0:
  if x > 0 then b1 else b2
b1:
  x := a + b
  out(x)
  goto b3
b2:
  x := a + b
  out(x, x)
  goto b3
b3:
  halt
}
)");
  FlowGraph Am = runAssignmentMotionOnly(G);
  EXPECT_EQ(countAssigns(Am, "x", "a + b"), 2u);
  EXPECT_EQ(countInBlock(Am, 0, "x := a + b"), 0u);
  for (int64_t X : {-1, 1}) {
    auto Rep = checkEquivalent(G, Am, {{"a", 1}, {"b", 2}, {"x", X}});
    EXPECT_TRUE(Rep.Equivalent) << Rep.Detail;
  }
}

TEST(FlushCorners, LoopCarriedInitStaysOnTheBackedgeSide) {
  // The h2 := x+z pattern of the running example: the init must appear
  // both before the loop and at the end of the body (x changes inside),
  // never in the header.
  FlowGraph G = figure4();
  G.splitCriticalEdges();
  runInitializationPhase(G);
  runAssignmentMotionPhase(G);
  runFinalFlush(G);
  FlowGraph Final = simplified(G);
  EXPECT_EQ(countInBlock(Final, 0, "h2 := x + z"), 1u);
  EXPECT_EQ(countInBlock(Final, 2, "h2 := x + z"), 1u);
  EXPECT_EQ(countInBlock(Final, 1, "h2 := x + z"), 0u); // not in header
}

TEST(FlushCorners, InitServingTwoUsesOnDifferentPathsStays) {
  FlowGraph G = parse(R"(
graph {
temp h1
b0:
  h1 := a + b
  if c > 0 then b1 else b2
b1:
  x := h1
  goto b3
b2:
  y := h1
  goto b3
b3:
  out(x, y)
  halt
}
)");
  FlowGraph Before = G;
  runFinalFlush(G);
  // One use on *each* path: no continuation uses h1 twice, so the flush
  // sinks the initialization into both branches and reconstructs each
  // single use — the temporary disappears at identical per-path cost.
  EXPECT_EQ(countAssigns(G, "h1", "a + b"), 0u);
  EXPECT_EQ(countAssigns(G, "x", "a + b"), 1u);
  EXPECT_EQ(countAssigns(G, "y", "a + b"), 1u);
  for (int64_t C : {-1, 1}) {
    auto Rep = checkEquivalent(Before, G, {{"a", 1}, {"b", 2}, {"c", C}});
    EXPECT_TRUE(Rep.Equivalent) << Rep.Detail;
    EXPECT_EQ(Rep.Rhs.Stats.ExprEvaluations, 1u);
    EXPECT_LT(Rep.Rhs.Stats.TempAssignExecutions,
              Rep.Lhs.Stats.TempAssignExecutions);
  }
}

TEST(FlushCorners, SingleUsePerPathIsReconstructedIntoEachPath) {
  FlowGraph G = parse(R"(
graph {
temp h1
b0:
  h1 := a + b
  if c > 0 then b1 else b2
b1:
  x := h1
  out(x)
  goto b3
b2:
  out(c)
  goto b3
b3:
  halt
}
)");
  FlowGraph Before = G;
  runFinalFlush(G);
  // Only the then-path uses h1: the flush sinks it there and reconstructs
  // the single use; the else-path pays nothing.
  EXPECT_EQ(countAssigns(G, "h1", "a + b"), 0u);
  EXPECT_EQ(countAssigns(G, "x", "a + b"), 1u);
  auto ElsePath = Interpreter::execute(G, {{"c", -5}});
  EXPECT_EQ(ElsePath.Stats.ExprEvaluations, 0u);
  for (int64_t C : {-1, 1}) {
    auto Rep = checkEquivalent(Before, G, {{"a", 1}, {"b", 2}, {"c", C}});
    EXPECT_TRUE(Rep.Equivalent) << Rep.Detail;
  }
}

TEST(UniformCorners, Figure7EndToEndThroughTheFullPipeline) {
  // The full pipeline (with init + flush) on the irreducible example does
  // strictly better than AM alone: the two surviving x := y+z sites share
  // one temporary initialization, so y+z is evaluated at most once per
  // execution.
  FlowGraph G = figure7();
  FlowGraph U = runUniformEmAm(G);
  FlowGraph AmOnly = runAssignmentMotionOnly(G);
  EXPECT_TRUE(U.validate().empty());
  Interpreter::Options Opts;
  Opts.MaxSteps = 2000;
  for (uint64_t Seed = 0; Seed < 16; ++Seed) {
    auto Rep = checkEquivalent(G, U, {{"y", 7}, {"z", 4}}, Seed, Opts);
    ASSERT_TRUE(Rep.Equivalent) << Rep.Detail << " seed " << Seed;
    auto RunAm =
        Interpreter::execute(AmOnly, {{"y", 7}, {"z", 4}}, Seed, Opts);
    EXPECT_LE(Rep.Rhs.Stats.ExprEvaluations, RunAm.Stats.ExprEvaluations)
        << "seed " << Seed;
    EXPECT_LE(Rep.Rhs.Stats.TempAssignExecutions, 1u);
  }
}
