//===- tests/fuzz_test.cpp - Robustness fuzzing ----------------*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic fuzzing: the parsers must reject arbitrary garbage
/// gracefully (an error message, never a crash), near-miss mutations of
/// valid programs must parse-or-error cleanly, and the whole pass stack
/// must stay total on hostile but valid graphs.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "interp/Equivalence.h"
#include "gen/RandomProgram.h"
#include "support/Rng.h"
#include "transform/Pipeline.h"

#include <gtest/gtest.h>

using namespace am;
using namespace am::test;

namespace {

/// Pseudo-random printable soup.
std::string randomSoup(Rng &R, size_t Length) {
  static const char Alphabet[] =
      "abcxyz0189 :=+-*/<>()!{},;\n\t#programgraphbrgotoifthenelsehalt";
  std::string S;
  for (size_t Idx = 0; Idx < Length; ++Idx)
    S.push_back(Alphabet[R.index(sizeof(Alphabet) - 1)]);
  return S;
}

} // namespace

class ParserFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParserFuzz, GarbageNeverCrashesTheParsers) {
  Rng R(GetParam());
  for (int Round = 0; Round < 40; ++Round) {
    std::string Soup = randomSoup(R, 10 + R.index(200));
    ParseResult A = parseProgram(Soup);
    ParseResult B = parseProgram("program { " + Soup + " }");
    ParseResult C = parseProgram("graph { " + Soup + " }");
    // Either outcome is fine; a crash is not.  Errors must carry a
    // location.
    for (ParseResult *P : {&A, &B, &C}) {
      if (!P->ok()) {
        EXPECT_NE(P->Error.find("line"), std::string::npos) << P->Error;
      }
    }
  }
}

TEST_P(ParserFuzz, MutatedValidProgramsParseOrErrorCleanly) {
  Rng R(GetParam() + 1000);
  FlowGraph G = generateStructuredProgram(GetParam());
  std::string Source = printGraph(G);
  for (int Round = 0; Round < 40; ++Round) {
    std::string Mutated = Source;
    // Flip, delete or insert a few characters.
    for (int Edit = 0; Edit < 3; ++Edit) {
      if (Mutated.empty())
        break;
      size_t Pos = R.index(Mutated.size());
      switch (R.index(3)) {
      case 0:
        Mutated[Pos] = static_cast<char>('a' + R.index(26));
        break;
      case 1:
        Mutated.erase(Pos, 1);
        break;
      case 2:
        Mutated.insert(Pos, 1, static_cast<char>('0' + R.index(10)));
        break;
      }
    }
    ParseResult P = parseProgram(Mutated);
    if (P.ok()) {
      EXPECT_TRUE(P.Graph.validate().empty())
          << "parser accepted an invalid graph";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz, ::testing::Range<uint64_t>(0, 8));

class PassFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PassFuzz, HostileIrreducibleGraphsSurviveTheFullStack) {
  GenOptions Opts;
  Opts.NumBlocks = 8 + static_cast<unsigned>(GetParam() % 20);
  Opts.ExtraEdges = 10 + static_cast<unsigned>(GetParam() % 15);
  FlowGraph G = generateIrreducibleCfg(GetParam(), Opts);
  PipelineResult R = runPipeline(G, "lvn,am,uniform,pde,simplify");
  ASSERT_TRUE(R.ok());
  EXPECT_TRUE(R.Graph.validate().empty()) << "seed " << GetParam();
  Interpreter::Options ExecOpts;
  ExecOpts.MaxSteps = 2000;
  for (uint64_t Run = 0; Run < 3; ++Run) {
    auto Rep = checkEquivalent(G, R.Graph, {{"v0", 1}}, Run, ExecOpts);
    EXPECT_TRUE(Rep.Equivalent)
        << Rep.Detail << " seed " << GetParam() << " run " << Run;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PassFuzz, ::testing::Range<uint64_t>(0, 15));
