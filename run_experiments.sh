#!/bin/sh
# Regenerates the full evaluation: builds, runs the test suite and every
# experiment binary, and leaves the transcripts in test_output.txt and
# bench_output.txt (the files EXPERIMENTS.md is derived from).
set -e
cmake -B build -G Ninja
cmake --build build
ctest --test-dir build < /dev/null 2>&1 | tee test_output.txt
: > bench_output.txt
for b in build/bench/bench_*; do
  echo "===== $b =====" | tee -a bench_output.txt
  "$b" 2>&1 | tee -a bench_output.txt
done
echo "done: see test_output.txt and bench_output.txt"
