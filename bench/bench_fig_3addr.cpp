//===- bench/bench_fig_3addr.cpp - Figures 18-20 ---------------*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
//
// Experiment F18-F20 (DESIGN.md): the 3-address decomposition of
// x := a+b+c inside a loop.  EM gets stuck (Fig 19), EM+CP reaches
// Fig 20(a) but still executes two assignments per iteration, and uniform
// EM & AM empties the loop entirely (Fig 20(b)).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "figures/PaperFigures.h"
#include "ir/Printer.h"
#include "transform/CopyPropagation.h"
#include "transform/LazyCodeMotion.h"
#include "transform/UniformEmAm.h"

using namespace am;
using namespace am::bench;

namespace {

FlowGraph emPlusCp(const FlowGraph &G) {
  FlowGraph Work = runLazyCodeMotion(G);
  for (int Round = 0; Round < 4; ++Round) {
    if (runCopyPropagation(Work) == 0)
      break;
    Work = runLazyCodeMotion(Work);
  }
  return Work;
}

void study() {
  std::printf("# Figures 18-20: complex expressions vs 3-address code\n");

  FlowGraph G = figure18b();
  FlowGraph Em = runLazyCodeMotion(G);
  FlowGraph EmCp = emPlusCp(G);
  FlowGraph U = runUniformEmAm(G);

  std::printf("\n-- original (Fig 18b: t := a+b; x := t+c in a loop) --\n%s",
              printGraph(G).c_str());
  std::printf("\n-- EM only (Fig 19) --\n%s", printGraph(Em).c_str());
  std::printf("\n-- EM + CP interleaved (Fig 20a) --\n%s",
              printGraph(EmCp).c_str());
  std::printf("\n-- uniform EM & AM (Fig 20b) --\n%s",
              printGraph(U).c_str());

  auto LoopAssigns = [](const FlowGraph &P) {
    unsigned N = 0;
    // The loop block is the one with a self-reaching branch structure; in
    // all variants it is the block with two successors.
    for (BlockId B = 0; B < P.numBlocks(); ++B)
      if (P.block(B).Succs.size() == 2)
        for (const Instr &I : P.block(B).Instrs)
          N += I.isAssign();
    return N;
  };
  std::printf("\nassignments inside the loop block: original=%u, EM=%u, "
              "EM+CP=%u, uniform=%u\n",
              LoopAssigns(simplified(G)), LoopAssigns(Em), LoopAssigns(EmCp),
              LoopAssigns(U));
  printClaim("EM alone leaves a computation in the loop (t+c not invariant)",
             LoopAssigns(Em) >= 2);
  printClaim("uniform EM & AM empties the loop", LoopAssigns(U) == 0);

  const std::unordered_map<std::string, int64_t> Inputs = {
      {"a", 1}, {"b", 2}, {"c", 3}};
  Counters COrig = measure(G, Inputs, 32, 4000);
  Counters CEm = measure(Em, Inputs, 32, 4000);
  Counters CEmCp = measure(EmCp, Inputs, 32, 4000);
  Counters CU = measure(U, Inputs, 32, 4000);
  printTable("Figures 18-20 dynamics over 32 nondeterministic paths",
             {{"original (Fig 18b)", COrig},
              {"EM only (Fig 19)", CEm},
              {"EM + CP (Fig 20a)", CEmCp},
              {"uniform (Fig 20b)", CU}});
  printClaim("uniform minimizes expression evaluations",
             CU.ExprEvals <= CEm.ExprEvals && CU.ExprEvals <= CEmCp.ExprEvals);
  printClaim("uniform minimizes assignment executions",
             CU.Assigns <= CEm.Assigns && CU.Assigns <= CEmCp.Assigns);
}

void BM_UniformOnFig18(benchmark::State &State) {
  FlowGraph G = figure18b();
  for (auto _ : State)
    benchmark::DoNotOptimize(runUniformEmAm(G));
}
BENCHMARK(BM_UniformOnFig18);

void BM_EmPlusCpOnFig18(benchmark::State &State) {
  FlowGraph G = figure18b();
  for (auto _ : State)
    benchmark::DoNotOptimize(emPlusCp(G));
}
BENCHMARK(BM_EmPlusCpOnFig18);

} // namespace

AM_BENCH_MAIN(study)
