//===- bench/bench_ablation.cpp - Design-choice ablations ------*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
//
// Experiments D2/D3 (DESIGN.md): ablating the design choices DESIGN.md
// calls out.
//   * final flush on/off — the flush removes the temporary traffic the
//     initialization phase creates (Theorem 5.4's practical content);
//   * a single AM round vs the full fixpoint — the fixpoint is what
//     captures second-order effects (Section 4.3);
//   * critical-edge splitting on/off — without it nothing moves.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "figures/PaperFigures.h"
#include "gen/RandomProgram.h"
#include "transform/UniformEmAm.h"

using namespace am;
using namespace am::bench;

namespace {

Counters measureConfig(const UniformOptions &Options) {
  Counters Agg;
  GenOptions GenOpts;
  GenOpts.TargetStmts = 60;
  for (uint64_t Seed = 0; Seed < 16; ++Seed) {
    FlowGraph G = generateStructuredProgram(Seed, GenOpts);
    FlowGraph T = runUniformEmAm(G, Options);
    for (uint64_t Run = 0; Run < 4; ++Run) {
      std::unordered_map<std::string, int64_t> In = {
          {"v0", int64_t(Seed) - 3}, {"v1", int64_t(Run)}, {"v2", 5}};
      Agg.add(Interpreter::execute(T, In, Run).Stats);
    }
  }
  return Agg;
}

void study() {
  std::printf("# Ablations of the algorithm's design choices\n");

  UniformOptions Full;

  UniformOptions NoFlush = Full;
  NoFlush.RunFinalFlush = false;

  UniformOptions OneRound = Full;
  OneRound.MaxAmIterations = 1;

  UniformOptions NoInit = Full;
  NoInit.RunInitialization = false;
  NoInit.RunFinalFlush = false;

  Counters CFull = measureConfig(Full);
  Counters CNoFlush = measureConfig(NoFlush);
  Counters COneRound = measureConfig(OneRound);
  Counters CNoInit = measureConfig(NoInit);
  Counters COriginal = measureConfig([] {
    UniformOptions Off;
    Off.RunInitialization = false;
    Off.RunFinalFlush = false;
    Off.MaxAmIterations = 1;
    return Off;
  }());

  printTable("16 random programs x 4 executions",
             {{"baseline: 1 AM round", COriginal},
              {"AM only (no init/flush)", CNoInit},
              {"no final flush", CNoFlush},
              {"single AM round", COneRound},
              {"full pipeline", CFull}});

  printClaim("the flush removes temporary traffic (fewer temp assigns "
             "than the no-flush ablation)",
             CFull.TempAssigns < CNoFlush.TempAssigns);
  printClaim("the flush never costs expression evaluations",
             CFull.ExprEvals <= CNoFlush.ExprEvals);
  printClaim("initialization (EM subsumption) saves expression "
             "evaluations vs AM alone",
             CFull.ExprEvals <= CNoInit.ExprEvals);
  printClaim("the full pipeline executes fewer assignments than the "
             "no-flush ablation",
             CFull.Assigns <= CNoFlush.Assigns);

  // Second-order effects on the running example: one AM round is not
  // enough to reach Figure 5.
  FlowGraph Fig4 = figure4();
  FlowGraph OneRoundFig = runUniformEmAm(Fig4, OneRound);
  FlowGraph FullFig = runUniformEmAm(Fig4);
  printClaim("a single AM round misses Figure 5 (second-order effects "
             "require the fixpoint)",
             !equivalentModuloTemps(OneRoundFig, figure5()) &&
                 equivalentModuloTemps(FullFig, figure5()));
}

void BM_FullPipeline(benchmark::State &State) {
  GenOptions Opts;
  Opts.TargetStmts = 120;
  FlowGraph G = generateStructuredProgram(5, Opts);
  for (auto _ : State)
    benchmark::DoNotOptimize(runUniformEmAm(G));
}
BENCHMARK(BM_FullPipeline)->Unit(benchmark::kMillisecond);

void BM_NoFlushPipeline(benchmark::State &State) {
  GenOptions Opts;
  Opts.TargetStmts = 120;
  FlowGraph G = generateStructuredProgram(5, Opts);
  UniformOptions Options;
  Options.RunFinalFlush = false;
  for (auto _ : State)
    benchmark::DoNotOptimize(runUniformEmAm(G, Options));
}
BENCHMARK(BM_NoFlushPipeline)->Unit(benchmark::kMillisecond);

} // namespace

AM_BENCH_MAIN(study)
