//===- bench/bench_fig_edges.cpp - Figure 10 -------------------*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
//
// Experiment F10 (DESIGN.md): critical edges block code motion; splitting
// them with synthetic nodes enables the elimination.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "figures/PaperFigures.h"
#include "ir/Printer.h"
#include "transform/UniformEmAm.h"

using namespace am;
using namespace am::bench;

namespace {

void study() {
  std::printf("# Figure 10: critical edges\n");

  FlowGraph G = figure10a();
  std::printf("\n-- original (Fig 10a, edge (2,3) critical) --\n%s",
              printGraph(G).c_str());

  UniformOptions NoSplit;
  NoSplit.SplitCriticalEdges = false;
  NoSplit.RunInitialization = false;
  NoSplit.RunFinalFlush = false;
  FlowGraph Unsplit = runUniformEmAm(G, NoSplit);
  FlowGraph Split = runAssignmentMotionOnly(G);
  std::printf("\n-- with splitting (Fig 10b) --\n%s",
              printGraph(Split).c_str());

  printClaim("without splitting the motion passes cannot run at all",
             equivalentModuloTemps(Unsplit, simplified(G)));

  unsigned JoinOcc = 0;
  for (BlockId B = 0; B < Split.numBlocks(); ++B)
    if (Split.block(B).Preds.size() > 1)
      for (const Instr &I : Split.block(B).Instrs)
        JoinOcc += printInstr(I, Split.Vars) == "x := a + b";
  printClaim("after splitting, the join's occurrence is eliminated",
             JoinOcc == 0);

  const std::unordered_map<std::string, int64_t> Inputs = {{"a", 5},
                                                           {"b", 6}};
  Counters COrig = measure(G, Inputs);
  Counters CSplit = measure(Split, Inputs);
  printTable("Figure 10 dynamics",
             {{"original", COrig}, {"split + AM", CSplit}});
  printClaim("splitting enables strictly fewer assignment executions",
             CSplit.Assigns < COrig.Assigns);
}

void BM_SplitCriticalEdges(benchmark::State &State) {
  for (auto _ : State) {
    FlowGraph G = figure10a();
    benchmark::DoNotOptimize(G.splitCriticalEdges());
  }
}
BENCHMARK(BM_SplitCriticalEdges);

void BM_AmOnFig10(benchmark::State &State) {
  FlowGraph G = figure10a();
  for (auto _ : State)
    benchmark::DoNotOptimize(runAssignmentMotionOnly(G));
}
BENCHMARK(BM_AmOnFig10);

} // namespace

AM_BENCH_MAIN(study)
