//===- bench/bench_dynamic.cpp - Headline dynamic comparison ---*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
//
// Experiment D1 (DESIGN.md), the headline claim (Theorem 5.2): the uniform
// algorithm's result never evaluates more expressions at runtime than any
// program obtainable by EM and AM transformations — in particular it
// dominates EM alone, AM alone and EM+CP on every execution.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "analysis/Dominators.h"
#include "gen/RandomProgram.h"
#include "transform/CopyPropagation.h"
#include "transform/LazyCodeMotion.h"
#include "transform/UniformEmAm.h"

using namespace am;
using namespace am::bench;

namespace {

FlowGraph emPlusCp(const FlowGraph &G) {
  FlowGraph Work = runLazyCodeMotion(G);
  for (int Round = 0; Round < 4; ++Round) {
    if (runCopyPropagation(Work) == 0)
      break;
    Work = runLazyCodeMotion(Work);
  }
  return Work;
}

void study() {
  std::printf("# Theorem 5.2 dynamics: uniform EM & AM vs every baseline\n");
  std::printf("# 24 random structured programs x 6 executions each\n");

  Counters Orig, Em, Am, EmCp, Uniform;
  unsigned UniformDominatedEverywhere = 0, Total = 0;
  unsigned LoopAssignsBefore = 0, LoopAssignsAfter = 0;

  GenOptions Opts;
  Opts.TargetStmts = 60;
  for (uint64_t Seed = 0; Seed < 24; ++Seed) {
    FlowGraph G = generateStructuredProgram(Seed, Opts);
    FlowGraph GEm = runLazyCodeMotion(G);
    FlowGraph GAm = runAssignmentMotionOnly(G);
    FlowGraph GEmCp = emPlusCp(G);
    FlowGraph GU = runUniformEmAm(G);
    LoopAssignsBefore += LoopInfo::compute(G).assignmentsInLoops(G);
    LoopAssignsAfter += LoopInfo::compute(GU).assignmentsInLoops(GU);

    bool DominatesHere = true;
    for (uint64_t Run = 0; Run < 6; ++Run) {
      std::unordered_map<std::string, int64_t> In;
      for (unsigned V = 0; V < 8; ++V)
        In["v" + std::to_string(V)] =
            static_cast<int64_t>((Seed * 31 + Run * 7 + V) % 19) - 9;
      auto RO = Interpreter::execute(G, In, Run);
      auto REm = Interpreter::execute(GEm, In, Run);
      auto RAm = Interpreter::execute(GAm, In, Run);
      auto REmCp = Interpreter::execute(GEmCp, In, Run);
      auto RU = Interpreter::execute(GU, In, Run);
      Orig.add(RO.Stats);
      Em.add(REm.Stats);
      Am.add(RAm.Stats);
      EmCp.add(REmCp.Stats);
      Uniform.add(RU.Stats);
      // Theorem 5.2 speaks about the universe of EM and AM
      // transformations; EM+CP rewrites operands (copy propagation can
      // unify syntactic patterns) and thus sits outside that universe.
      DominatesHere &= RU.Stats.ExprEvaluations <= RO.Stats.ExprEvaluations &&
                       RU.Stats.ExprEvaluations <= REm.Stats.ExprEvaluations &&
                       RU.Stats.ExprEvaluations <= RAm.Stats.ExprEvaluations;
      ++Total;
    }
    UniformDominatedEverywhere += DominatesHere;
  }

  printTable("aggregate dynamic counters (144 executions)",
             {{"original", Orig},
              {"EM only (LCM)", Em},
              {"AM only", Am},
              {"EM + CP", EmCp},
              {"uniform EM & AM", Uniform}});

  auto Pct = [&](uint64_t Base, uint64_t Now) {
    return Base ? 100.0 * (double(Base) - double(Now)) / double(Base) : 0.0;
  };
  std::printf("\nexpression evaluations saved vs original: EM %.1f%%, "
              "AM %.1f%%, EM+CP %.1f%%, uniform %.1f%%\n",
              Pct(Orig.ExprEvals, Em.ExprEvals),
              Pct(Orig.ExprEvals, Am.ExprEvals),
              Pct(Orig.ExprEvals, EmCp.ExprEvals),
              Pct(Orig.ExprEvals, Uniform.ExprEvals));
  printClaim("uniform dominates the original, EM alone and AM alone in "
             "expr-evals on every execution (Theorem 5.2)",
             UniformDominatedEverywhere == 24);
  printClaim("uniform matches EM's expression savings without EM's "
             "temporary traffic",
             Uniform.ExprEvals <= Em.ExprEvals &&
                 Uniform.TempAssigns < Em.TempAssigns / 4);
  printClaim("uniform executes far fewer assignments than EM or EM+CP",
             Uniform.Assigns < Em.Assigns && Uniform.Assigns < EmCp.Assigns);
  std::printf("\nstatic assignments inside natural loops: %u -> %u "
              "(uniform pipeline)\n"
              "(static in-loop code may grow: split backedge blocks sit "
              "inside the loop and\nlazy placement trades static "
              "duplication for the dynamic wins measured above)\n",
              LoopAssignsBefore, LoopAssignsAfter);
  std::printf("\nnote: EM+CP rewrites operands via copy propagation and so "
              "leaves the paper's\nEM/AM universe; it may occasionally save "
              "an extra evaluation (here it pays\n%.1fx the assignment "
              "executions for it).\n",
              double(EmCp.Assigns) / double(Uniform.Assigns));
}

void BM_PipelineThroughput(benchmark::State &State) {
  GenOptions Opts;
  Opts.TargetStmts = static_cast<unsigned>(State.range(0));
  FlowGraph G = generateStructuredProgram(3, Opts);
  for (auto _ : State)
    benchmark::DoNotOptimize(runUniformEmAm(G));
  State.SetItemsProcessed(State.iterations() *
                          static_cast<int64_t>(G.numInstrs()));
}
BENCHMARK(BM_PipelineThroughput)->Arg(60)->Arg(240)
    ->Unit(benchmark::kMillisecond);

} // namespace

AM_BENCH_MAIN(study)
