//===- bench/bench_lifetime.cpp - Temporary-lifetime study -----*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
//
// Experiment X2 (DESIGN.md), the practical content of Theorem 5.4: the
// final flush keeps temporaries short-lived.  Busy code motion (earliest
// placement) pays the longest lifetimes, lazy code motion shortens them,
// and the uniform algorithm's flush removes most temporaries altogether.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "analysis/Lifetime.h"
#include "gen/RandomProgram.h"
#include "transform/BusyCodeMotion.h"
#include "transform/LazyCodeMotion.h"
#include "transform/UniformEmAm.h"

using namespace am;
using namespace am::bench;

namespace {

struct LifetimeRow {
  const char *Variant;
  LifetimeStats S;
  uint64_t ExprEvals;
};

void study() {
  std::printf("# Theorem 5.4 in practice: temporary lifetimes "
              "(busy vs lazy vs flush)\n");
  std::printf("# 16 random structured programs; lifetimes are static "
              "live-temp program points\n\n");

  LifetimeStats Bcm, Lcm, Uniform, NoFlush;
  uint64_t EvalsBcm = 0, EvalsLcm = 0, EvalsUniform = 0;
  auto Accumulate = [](LifetimeStats &Into, const LifetimeStats &S) {
    Into.TempLifetimePoints += S.TempLifetimePoints;
    Into.TotalLifetimePoints += S.TotalLifetimePoints;
    Into.MaxLiveTemps = std::max(Into.MaxLiveTemps, S.MaxLiveTemps);
    Into.TempAssignments += S.TempAssignments;
  };

  GenOptions Opts;
  Opts.TargetStmts = 60;
  UniformOptions NoFlushOpts;
  NoFlushOpts.RunFinalFlush = false;
  for (uint64_t Seed = 0; Seed < 16; ++Seed) {
    FlowGraph G = generateStructuredProgram(Seed, Opts);
    FlowGraph GBcm = runBusyCodeMotion(G);
    FlowGraph GLcm = runLazyCodeMotion(G);
    FlowGraph GU = runUniformEmAm(G);
    FlowGraph GNf = runUniformEmAm(G, NoFlushOpts);
    Accumulate(Bcm, computeLifetimeStats(GBcm));
    Accumulate(Lcm, computeLifetimeStats(GLcm));
    Accumulate(Uniform, computeLifetimeStats(GU));
    Accumulate(NoFlush, computeLifetimeStats(GNf));
    std::unordered_map<std::string, int64_t> In = {{"v0", 3}, {"v1", -1}};
    for (uint64_t Run = 0; Run < 4; ++Run) {
      EvalsBcm += Interpreter::execute(GBcm, In, Run).Stats.ExprEvaluations;
      EvalsLcm += Interpreter::execute(GLcm, In, Run).Stats.ExprEvaluations;
      EvalsUniform +=
          Interpreter::execute(GU, In, Run).Stats.ExprEvaluations;
    }
  }

  std::printf("%-24s %16s %14s %14s\n", "variant", "temp-lifetime-pts",
              "max-live-temps", "temp-assigns");
  for (const LifetimeRow &R :
       {LifetimeRow{"BCM (earliest)", Bcm, EvalsBcm},
        LifetimeRow{"LCM (lazy)", Lcm, EvalsLcm},
        LifetimeRow{"uniform, no flush", NoFlush, 0},
        LifetimeRow{"uniform EM & AM", Uniform, EvalsUniform}})
    std::printf("%-24s %16llu %14u %14u\n", R.Variant,
                (unsigned long long)R.S.TempLifetimePoints, R.S.MaxLiveTemps,
                R.S.TempAssignments);

  printClaim("busy and lazy placement evaluate the same expressions",
             EvalsBcm == EvalsLcm);
  printClaim("lazy placement has shorter temporary lifetimes than busy",
             Lcm.TempLifetimePoints <= Bcm.TempLifetimePoints);
  printClaim("the uniform flush yields the shortest temporary lifetimes "
             "of all",
             Uniform.TempLifetimePoints <= Lcm.TempLifetimePoints &&
                 Uniform.TempLifetimePoints <= NoFlush.TempLifetimePoints);
  printClaim("uniform keeps expression evaluations at the EM optimum",
             EvalsUniform <= EvalsLcm);
}

void BM_Bcm(benchmark::State &State) {
  GenOptions Opts;
  Opts.TargetStmts = 120;
  FlowGraph G = generateStructuredProgram(9, Opts);
  for (auto _ : State)
    benchmark::DoNotOptimize(runBusyCodeMotion(G));
}
BENCHMARK(BM_Bcm)->Unit(benchmark::kMillisecond);

void BM_LifetimeMetric(benchmark::State &State) {
  GenOptions Opts;
  Opts.TargetStmts = 120;
  FlowGraph G = runLazyCodeMotion(generateStructuredProgram(9, Opts));
  for (auto _ : State)
    benchmark::DoNotOptimize(computeLifetimeStats(G));
}
BENCHMARK(BM_LifetimeMetric)->Unit(benchmark::kMillisecond);

} // namespace

AM_BENCH_MAIN(study)
