//===- bench/bench_fig_restricted.cpp - Figures 8/9 ------------*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
//
// Experiment F8/F9 (DESIGN.md): Dhamdhere-style "immediately profitable"
// hoisting misses the enabling hoisting of a := x+y; unrestricted AM
// performs it and eliminates the partially redundant x := y+z.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "figures/PaperFigures.h"
#include "gen/RandomProgram.h"
#include "ir/Printer.h"
#include "transform/RestrictedAssignmentMotion.h"
#include "transform/UniformEmAm.h"

using namespace am;
using namespace am::bench;

namespace {

void study() {
  std::printf("# Figures 8/9: restricted vs unrestricted assignment motion\n");

  FlowGraph G = figure8();
  FlowGraph Restricted = runRestrictedAssignmentMotion(G);
  FlowGraph Unrestricted = runAssignmentMotionOnly(G);

  std::printf("\n-- original (Fig 8) --\n%s", printGraph(G).c_str());
  std::printf("\n-- restricted AM (no effect) --\n%s",
              printGraph(Restricted).c_str());
  std::printf("\n-- unrestricted AM (Fig 9b) --\n%s",
              printGraph(Unrestricted).c_str());

  printClaim("restricted AM leaves Figure 8 unchanged",
             equivalentModuloTemps(Restricted, simplified(G)));
  printClaim("unrestricted AM reaches exactly Figure 9(b)",
             equivalentModuloTemps(Unrestricted, figure9b()));

  const std::unordered_map<std::string, int64_t> Inputs = {
      {"x", 1}, {"y", 2}, {"z", 3}};
  Counters COrig = measure(G, Inputs);
  Counters CRestr = measure(Restricted, Inputs);
  Counters CFull = measure(Unrestricted, Inputs);
  printTable("Figure 8 dynamics",
             {{"original", COrig},
              {"restricted AM [6]", CRestr},
              {"unrestricted AM", CFull}});
  printClaim("unrestricted AM executes fewer assignments on some paths",
             CFull.Assigns < CRestr.Assigns);

  // The same separation on random workloads: unrestricted AM dominates.
  Counters AggRestr, AggFull;
  GenOptions Opts;
  Opts.TargetStmts = 18;
  for (uint64_t Seed = 0; Seed < 10; ++Seed) {
    FlowGraph P = generateStructuredProgram(Seed, Opts);
    FlowGraph R = runRestrictedAssignmentMotion(P);
    FlowGraph U = runAssignmentMotionOnly(P);
    std::unordered_map<std::string, int64_t> In = {{"v0", 3}, {"v1", -2}};
    Counters CR = measure(R, In, 4);
    Counters CU = measure(U, In, 4);
    AggRestr.ExprEvals += CR.ExprEvals;
    AggRestr.Assigns += CR.Assigns;
    AggRestr.TempAssigns += CR.TempAssigns;
    AggFull.ExprEvals += CU.ExprEvals;
    AggFull.Assigns += CU.Assigns;
    AggFull.TempAssigns += CU.TempAssigns;
  }
  printTable("10 random structured programs, 4 paths each",
             {{"restricted AM [6]", AggRestr},
              {"unrestricted AM", AggFull}});
  printClaim("unrestricted AM never loses to restricted AM",
             AggFull.Assigns <= AggRestr.Assigns);
}

void BM_RestrictedAm(benchmark::State &State) {
  FlowGraph G = figure8();
  for (auto _ : State)
    benchmark::DoNotOptimize(runRestrictedAssignmentMotion(G));
}
BENCHMARK(BM_RestrictedAm);

void BM_UnrestrictedAm(benchmark::State &State) {
  FlowGraph G = figure8();
  for (auto _ : State)
    benchmark::DoNotOptimize(runAssignmentMotionOnly(G));
}
BENCHMARK(BM_UnrestrictedAm);

} // namespace

AM_BENCH_MAIN(study)
