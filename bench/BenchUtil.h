//===- bench/BenchUtil.h - Shared benchmark helpers ------------*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the experiment binaries: dynamic-counter measurement
/// across interpreter runs and a small fixed-width table printer for the
/// paper-style comparison rows.  Every bench binary prints its
/// figure-reproduction table first and then runs its google-benchmark
/// timings, so `for b in build/bench/*; do $b; done` regenerates the whole
/// evaluation.
///
//===----------------------------------------------------------------------===//

#ifndef AM_BENCH_BENCHUTIL_H
#define AM_BENCH_BENCHUTIL_H

#include "interp/Interpreter.h"
#include "ir/FlowGraph.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

namespace am::bench {

/// Aggregated dynamic counters over a set of runs.
struct Counters {
  uint64_t ExprEvals = 0;
  uint64_t Assigns = 0;
  uint64_t TempAssigns = 0;
  uint64_t Runs = 0;

  void add(const ExecStats &S) {
    ExprEvals += S.ExprEvaluations;
    Assigns += S.AssignExecutions;
    TempAssigns += S.TempAssignExecutions;
    ++Runs;
  }
};

/// Executes \p G for \p NumSeeds nondeterministic seeds on \p Inputs and
/// accumulates the counters.
inline Counters
measure(const FlowGraph &G,
        const std::unordered_map<std::string, int64_t> &Inputs,
        unsigned NumSeeds = 8, uint64_t MaxSteps = 20000) {
  Counters C;
  Interpreter::Options Opts;
  Opts.MaxSteps = MaxSteps;
  for (uint64_t Seed = 0; Seed < NumSeeds; ++Seed) {
    ExecResult R = Interpreter::execute(G, Inputs, Seed, Opts);
    C.add(R.Stats);
  }
  return C;
}

/// One row of a comparison table.
struct Row {
  std::string Variant;
  Counters C;
};

/// Prints the paper-style comparison table.
inline void printTable(const std::string &Title,
                       const std::vector<Row> &Rows) {
  std::printf("\n== %s ==\n", Title.c_str());
  std::printf("%-24s %14s %14s %14s\n", "variant", "expr-evals", "assigns",
              "temp-assigns");
  for (const Row &R : Rows)
    std::printf("%-24s %14llu %14llu %14llu\n", R.Variant.c_str(),
                (unsigned long long)R.C.ExprEvals,
                (unsigned long long)R.C.Assigns,
                (unsigned long long)R.C.TempAssigns);
}

/// Prints a claim line with its measured verdict.
inline void printClaim(const std::string &Claim, bool Holds) {
  std::printf("  claim: %-66s [%s]\n", Claim.c_str(),
              Holds ? "holds" : "VIOLATED");
}

} // namespace am::bench

/// Standard main: print the study (figure reproduction) first, then run
/// the registered google-benchmark timings.
#define AM_BENCH_MAIN(STUDY_FN)                                              \
  int main(int argc, char **argv) {                                         \
    STUDY_FN();                                                             \
    ::benchmark::Initialize(&argc, argv);                                   \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv))               \
      return 1;                                                             \
    ::benchmark::RunSpecifiedBenchmarks();                                  \
    ::benchmark::Shutdown();                                                \
    return 0;                                                               \
  }

#endif // AM_BENCH_BENCHUTIL_H
