//===- bench/bench_scaling.cpp - Complexity experiments --------*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
//
// Experiments C1/C2 (DESIGN.md), Section 4.5 of the paper: the worst-case
// complexity of the global algorithm is "essentially quadratic" for
// structured programs, and the number of rae/aht iterations of the AM
// phase is linear "with a small constant" for realistic programs.
//
// The study prints iteration counts against program size; the benchmarks
// time the full pipeline across sizes, for structured and unstructured
// control flow.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "dfa/Dataflow.h"
#include "gen/RandomProgram.h"
#include "ir/Patterns.h"
#include "transform/Initialization.h"
#include "transform/UniformEmAm.h"

using namespace am;
using namespace am::bench;

namespace {

/// The Table 2 redundancy equations, restated locally for the solver-
/// scheduling comparison.
class RedundancyCheckProblem : public DataflowProblem {
public:
  explicit RedundancyCheckProblem(const AssignPatternTable &Pats)
      : Pats(Pats) {}
  Direction direction() const override { return Direction::Forward; }
  Meet meet() const override { return Meet::All; }
  size_t numBits() const override { return Pats.size(); }
  void gen(BlockId, size_t, const Instr &I, BitVector &Out) const override {
    Out = Pats.makeVector();
    size_t Idx = Pats.occurrence(I);
    if (Idx != AssignPatternTable::npos)
      Out.set(Idx);
  }
  void kill(BlockId, size_t, const Instr &I, BitVector &Out) const override {
    Pats.killedBy(I, Out);
  }

private:
  const AssignPatternTable &Pats;
};

GenOptions structuredOpts(unsigned Stmts) {
  GenOptions Opts;
  Opts.TargetStmts = Stmts;
  Opts.NumVars = 8;
  Opts.PatternPoolSize = 12;
  return Opts;
}

void study() {
  std::printf("# Section 4.5: complexity on realistic programs\n\n");
  std::printf("%10s %8s %8s %12s %12s %12s\n", "stmts", "blocks", "instrs",
              "am-iters", "eliminated", "hoist-rounds");
  for (unsigned Stmts : {16u, 32u, 64u, 128u, 256u, 512u, 1024u}) {
    uint64_t Blocks = 0, Instrs = 0, Iters = 0, Elim = 0, Hoists = 0;
    const unsigned NumSeeds = 5;
    for (uint64_t Seed = 0; Seed < NumSeeds; ++Seed) {
      FlowGraph G = generateStructuredProgram(Seed, structuredOpts(Stmts));
      Blocks += G.numBlocks();
      Instrs += G.numInstrs();
      UniformStats Stats;
      runUniformEmAm(G, UniformOptions(), &Stats);
      Iters += Stats.AmPhase.Iterations;
      Elim += Stats.AmPhase.Eliminated;
      Hoists += Stats.AmPhase.HoistRounds;
    }
    std::printf("%10u %8llu %8llu %12.1f %12.1f %12.1f\n", Stmts,
                (unsigned long long)(Blocks / NumSeeds),
                (unsigned long long)(Instrs / NumSeeds),
                double(Iters) / NumSeeds, double(Elim) / NumSeeds,
                double(Hoists) / NumSeeds);
  }
  std::printf("\nclaim (Section 4.5): the number of AM iterations stays "
              "small and essentially flat\nwith program size for realistic "
              "structured programs (the quadratic bound is a\nworst case).  "
              "The table above regenerates that observation.\n");
}

void BM_UniformStructured(benchmark::State &State) {
  FlowGraph G = generateStructuredProgram(
      7, structuredOpts(static_cast<unsigned>(State.range(0))));
  uint64_t Iters = 0;
  for (auto _ : State) {
    UniformStats Stats;
    benchmark::DoNotOptimize(runUniformEmAm(G, UniformOptions(), &Stats));
    Iters = Stats.AmPhase.Iterations;
  }
  State.counters["blocks"] = static_cast<double>(G.numBlocks());
  State.counters["instrs"] = static_cast<double>(G.numInstrs());
  State.counters["am_iters"] = static_cast<double>(Iters);
  State.SetComplexityN(static_cast<int64_t>(G.numInstrs()));
}
BENCHMARK(BM_UniformStructured)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256)
    ->Arg(1024)
    ->Complexity(benchmark::oNSquared)
    ->Unit(benchmark::kMillisecond);

void BM_UniformUnstructured(benchmark::State &State) {
  GenOptions Opts;
  Opts.NumBlocks = static_cast<unsigned>(State.range(0));
  Opts.ExtraEdges = Opts.NumBlocks / 2;
  FlowGraph G = generateIrreducibleCfg(11, Opts);
  for (auto _ : State)
    benchmark::DoNotOptimize(runUniformEmAm(G));
  State.counters["blocks"] = static_cast<double>(G.numBlocks());
}
BENCHMARK(BM_UniformUnstructured)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256)
    ->Unit(benchmark::kMillisecond);

/// Round-robin vs worklist scheduling of the same analysis (refs [13, 14]
/// of the paper: iterative bit-vector analyses are near-linear on
/// structured code when scheduled well).
void BM_SolverComparison(benchmark::State &State) {
  GenOptions Opts;
  Opts.TargetStmts = 512;
  FlowGraph G = generateStructuredProgram(7, Opts);
  G.splitCriticalEdges();
  runInitializationPhase(G);
  AssignPatternTable Pats;
  Pats.build(G);
  RedundancyCheckProblem Problem(Pats);
  SolverKind Kind =
      State.range(0) == 0 ? SolverKind::RoundRobin : SolverKind::Worklist;
  uint64_t Processed = 0;
  for (auto _ : State) {
    DataflowResult R = solve(G, Problem, Kind);
    Processed = R.BlocksProcessed;
    benchmark::DoNotOptimize(R);
  }
  State.counters["blocks_processed"] = Processed;
  State.SetLabel(State.range(0) == 0 ? "round-robin" : "worklist");
}
BENCHMARK(BM_SolverComparison)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

/// The transposed multi-pattern substrate against the classic wide-vector
/// fixpoint on the large scaling points (10k / 100k blocks with a pattern
/// universe far wider than one machine word).  Same problem, same unique
/// fixpoint — only the storage layout and sweep structure differ, so the
/// ratio isolates the substrate win (see dfa/MultiPattern.h).
void BM_SolverLayout(benchmark::State &State) {
  GenOptions Opts;
  Opts.TargetStmts = static_cast<unsigned>(State.range(0));
  Opts.NumVars = 24;
  Opts.PatternPoolSize = 320;
  FlowGraph G = generateStructuredProgram(61, Opts);
  AssignPatternTable Pats;
  Pats.build(G);
  RedundancyCheckProblem Problem(Pats);
  bool Transposed = State.range(1) != 0;
  setSolverLayout(Transposed ? SolverLayout::Transposed
                             : SolverLayout::Scalar);
  uint64_t Processed = 0;
  for (auto _ : State) {
    DataflowResult R = solve(G, Problem, SolverKind::Worklist);
    Processed = R.BlocksProcessed;
    benchmark::DoNotOptimize(R);
  }
  setSolverLayout(SolverLayout::Auto);
  State.counters["blocks"] = static_cast<double>(G.numBlocks());
  State.counters["patterns"] = static_cast<double>(Pats.size());
  State.counters["blocks_processed"] = static_cast<double>(Processed);
  State.SetLabel(Transposed ? "transposed" : "scalar");
}
BENCHMARK(BM_SolverLayout)
    ->Args({20000, 0})
    ->Args({20000, 1})
    ->Args({200000, 0})
    ->Args({200000, 1})
    ->Unit(benchmark::kMillisecond);

void BM_AmPhaseOnly(benchmark::State &State) {
  FlowGraph G = generateStructuredProgram(
      7, structuredOpts(static_cast<unsigned>(State.range(0))));
  G.splitCriticalEdges();
  for (auto _ : State) {
    FlowGraph Work = G;
    benchmark::DoNotOptimize(runAssignmentMotionPhase(Work));
  }
}
BENCHMARK(BM_AmPhaseOnly)->Arg(64)->Arg(256)->Unit(benchmark::kMillisecond);

} // namespace

AM_BENCH_MAIN(study)
