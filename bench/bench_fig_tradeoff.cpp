//===- bench/bench_fig_tradeoff.cpp - Figures 16/17 ------------*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
//
// Experiment F16/F17 (DESIGN.md): expression optimality is attainable, but
// *full* assignment- and temporary-optimality is not — two expression-
// optimal programs exist whose assignment counts are incomparable across
// paths (the paper's 4/4 vs 3/5).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "figures/PaperFigures.h"
#include "ir/Printer.h"
#include "transform/UniformEmAm.h"

using namespace am;
using namespace am::bench;

namespace {

void study() {
  std::printf("# Figures 16/17: the optimality boundary\n");

  FlowGraph G = figure16();
  FlowGraph U = runUniformEmAm(G);
  FlowGraph A = figure17a();
  FlowGraph B = figure17b();
  std::printf("\n-- original (Fig 16) --\n%s", printGraph(G).c_str());
  std::printf("\n-- uniform EM & AM --\n%s", printGraph(U).c_str());

  const std::unordered_map<std::string, int64_t> Inputs = {{"c", 1},
                                                           {"d", 2}};

  // Per-path comparison: same seed = same path through all variants.
  std::printf("\nper-path assignment executions "
              "(both 17-variants are expression-optimal):\n");
  std::printf("%6s %10s %12s %12s %12s\n", "seed", "original",
              "uniform", "Fig 17a", "Fig 17b");
  bool AWins = false, BWins = false, AllExprOptimal = true;
  for (uint64_t Seed = 0; Seed < 8; ++Seed) {
    auto RO = Interpreter::execute(G, Inputs, Seed);
    auto RU = Interpreter::execute(U, Inputs, Seed);
    auto RA = Interpreter::execute(A, Inputs, Seed);
    auto RB = Interpreter::execute(B, Inputs, Seed);
    std::printf("%6llu %10llu %12llu %12llu %12llu\n",
                (unsigned long long)Seed,
                (unsigned long long)RO.Stats.AssignExecutions,
                (unsigned long long)RU.Stats.AssignExecutions,
                (unsigned long long)RA.Stats.AssignExecutions,
                (unsigned long long)RB.Stats.AssignExecutions);
    AWins |= RA.Stats.AssignExecutions < RB.Stats.AssignExecutions;
    BWins |= RB.Stats.AssignExecutions < RA.Stats.AssignExecutions;
    AllExprOptimal &= RU.Stats.ExprEvaluations == 2 &&
                      RA.Stats.ExprEvaluations == 2 &&
                      RB.Stats.ExprEvaluations == 2;
  }
  printClaim("uniform and both Fig 17 variants are expression-optimal "
             "(2 evals/path vs 3 originally)",
             AllExprOptimal);
  printClaim("Fig 17(a) and 17(b) are incomparable in assignment counts",
             AWins && BWins);
  printClaim("hence full assignment-optimality is unattainable; relative "
             "optimality (Theorems 5.3/5.4) is the best possible",
             AWins && BWins);
}

void BM_UniformOnFig16(benchmark::State &State) {
  FlowGraph G = figure16();
  for (auto _ : State)
    benchmark::DoNotOptimize(runUniformEmAm(G));
}
BENCHMARK(BM_UniformOnFig16);

} // namespace

AM_BENCH_MAIN(study)
