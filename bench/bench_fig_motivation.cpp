//===- bench/bench_fig_motivation.cpp - Figures 1-3 ------------*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
//
// Experiments F1-F3 (DESIGN.md): the motivating examples.
//   Figure 1 — expression motion removes recomputations of a+b.
//   Figure 2 — assignment motion removes the re-execution of x := a+b.
//   Figure 3 — after the initialization transformation, AM subsumes EM.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "figures/PaperFigures.h"
#include "transform/LazyCodeMotion.h"
#include "transform/UniformEmAm.h"

using namespace am;
using namespace am::bench;

namespace {

const std::unordered_map<std::string, int64_t> Inputs = {
    {"a", 3}, {"b", 4}, {"y", 1}};

void study() {
  std::printf("# Figures 1-3: motivation (EM, AM, and uniform EM & AM)\n");

  // Figure 1: EM on the a+b example.
  FlowGraph Fig1 = figure1a();
  FlowGraph Fig1Em = runLazyCodeMotion(Fig1);
  Counters Orig1 = measure(Fig1, Inputs);
  Counters Em1 = measure(Fig1Em, Inputs);
  printTable("Figure 1: partially redundant expression elimination",
             {{"original (Fig 1a)", Orig1}, {"EM / LCM (Fig 1b)", Em1}});
  printClaim("EM eliminates recomputations of a+b (fewer expr-evals)",
             Em1.ExprEvals < Orig1.ExprEvals);

  // Figure 2: AM on the x := a+b example.
  FlowGraph Fig2 = figure2a();
  FlowGraph Fig2Am = runAssignmentMotionOnly(Fig2);
  Counters Orig2 = measure(Fig2, Inputs);
  Counters Am2 = measure(Fig2Am, Inputs);
  Counters Paper2 = measure(figure2b(), Inputs);
  printTable("Figure 2: partially redundant assignment elimination",
             {{"original (Fig 2a)", Orig2},
              {"AM (our result)", Am2},
              {"paper's Fig 2b", Paper2}});
  printClaim("AM eliminates re-executions of x := a+b (fewer assigns)",
             Am2.Assigns < Orig2.Assigns);
  printClaim("our AM result executes exactly the paper's Fig 2b counts",
             Am2.Assigns == Paper2.Assigns &&
                 Am2.ExprEvals == Paper2.ExprEvals);

  // Figure 3: uniform EM & AM subsumes EM on Figure 1.
  FlowGraph Fig3U = runUniformEmAm(Fig1);
  Counters U3 = measure(Fig3U, Inputs);
  printTable("Figure 3: uniform EM & AM on Figure 1's program",
             {{"original (Fig 1a)", Orig1},
              {"EM / LCM (Fig 1b)", Em1},
              {"uniform EM & AM", U3}});
  printClaim("uniform EM & AM matches or beats EM in expr-evals",
             U3.ExprEvals <= Em1.ExprEvals);
}

void BM_UniformOnFig1(benchmark::State &State) {
  FlowGraph G = figure1a();
  for (auto _ : State)
    benchmark::DoNotOptimize(runUniformEmAm(G));
}
BENCHMARK(BM_UniformOnFig1);

void BM_LcmOnFig1(benchmark::State &State) {
  FlowGraph G = figure1a();
  for (auto _ : State)
    benchmark::DoNotOptimize(runLazyCodeMotion(G));
}
BENCHMARK(BM_LcmOnFig1);

void BM_AmOnlyOnFig2(benchmark::State &State) {
  FlowGraph G = figure2a();
  for (auto _ : State)
    benchmark::DoNotOptimize(runAssignmentMotionOnly(G));
}
BENCHMARK(BM_AmOnlyOnFig2);

} // namespace

AM_BENCH_MAIN(study)
