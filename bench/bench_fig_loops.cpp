//===- bench/bench_fig_loops.cpp - Figure 7 --------------------*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
//
// Experiment F7 (DESIGN.md): profitable motion across loops — including an
// irreducible one — versus fatal motion into loops.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "figures/PaperFigures.h"
#include "ir/Printer.h"
#include "transform/RedundantAssignElim.h"
#include "transform/UniformEmAm.h"

using namespace am;
using namespace am::bench;

namespace {

void study() {
  std::printf("# Figure 7: moving assignments across (irreducible) loops\n");

  FlowGraph G = figure7();
  FlowGraph Am = runAssignmentMotionOnly(G);
  std::printf("\n-- before --\n%s\n-- after AM --\n%s",
              printGraph(G).c_str(), printGraph(Am).c_str());

  unsigned OccBefore = 0, OccAfter = 0;
  for (BlockId B = 0; B < G.numBlocks(); ++B)
    for (const Instr &I : G.block(B).Instrs)
      OccBefore += printInstr(I, G.Vars) == "x := y + z";
  for (BlockId B = 0; B < Am.numBlocks(); ++B)
    for (const Instr &I : Am.block(B).Instrs)
      OccAfter += printInstr(I, Am.Vars) == "x := y + z";
  std::printf("\nstatic occurrences of x := y+z: %u -> %u\n", OccBefore,
              OccAfter);
  printClaim("occurrences below the irreducible loop are all hoisted away",
             OccAfter == 2);

  bool MovedIntoFirstLoop = false;
  for (BlockId B = 0; B < Am.numBlocks(); ++B) {
    bool HasKill = false, HasYZ = false;
    for (const Instr &I : Am.block(B).Instrs) {
      HasKill |= printInstr(I, Am.Vars) == "x := 1";
      HasYZ |= printInstr(I, Am.Vars) == "x := y + z";
    }
    MovedIntoFirstLoop |= HasKill && HasYZ;
  }
  printClaim("nothing is moved into the first loop (would impair paths)",
             !MovedIntoFirstLoop);

  FlowGraph Check = Am;
  Check.splitCriticalEdges();
  printClaim("the remaining copy is only *partially* redundant (rae: 0)",
             runRedundantAssignmentElimination(Check) == 0);

  Counters CBefore = measure(G, {{"y", 7}, {"z", 4}}, 64, 2000);
  Counters CAfter = measure(Am, {{"y", 7}, {"z", 4}}, 64, 2000);
  printTable("Figure 7 dynamics over 64 nondeterministic paths",
             {{"original", CBefore}, {"after AM", CAfter}});
  printClaim("assignment executions never increase",
             CAfter.Assigns <= CBefore.Assigns);
}

void BM_AmOnIrreducible(benchmark::State &State) {
  FlowGraph G = figure7();
  for (auto _ : State)
    benchmark::DoNotOptimize(runAssignmentMotionOnly(G));
}
BENCHMARK(BM_AmOnIrreducible);

} // namespace

AM_BENCH_MAIN(study)
