//===- bench/bench_fig_running.cpp - Figures 4/5/6/12/14/15 ----*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
//
// Experiments F4/F5, F6 and F12/F14/F15 (DESIGN.md): the running example.
// Reproduces the phase-by-phase programs and shows that the uniform
// algorithm achieves exactly Figure 5 while EM alone and AM alone both
// fail to move x := y+z out of the loop (Figure 6).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "figures/PaperFigures.h"
#include "ir/Printer.h"
#include "transform/AssignmentMotion.h"
#include "transform/FinalFlush.h"
#include "transform/Initialization.h"
#include "transform/LazyCodeMotion.h"
#include "transform/UniformEmAm.h"

using namespace am;
using namespace am::bench;

namespace {

// Inputs that iterate the loop: x+z > y+i initially, i grows.
const std::unordered_map<std::string, int64_t> Inputs = {
    {"c", 1}, {"d", 2}, {"x", 40}, {"z", 10}, {"i", 1}, {"y", 0}};

void study() {
  std::printf("# Figures 4/5/6 and 12/14/15: the running example\n");

  FlowGraph Fig4 = figure4();

  // Phase by phase (Figures 12, 14, 15).
  FlowGraph Phased = Fig4;
  Phased.splitCriticalEdges();
  unsigned Decompositions = runInitializationPhase(Phased);
  std::printf("\n-- after initialization (Figure 12), %u decompositions --\n%s",
              Decompositions, printGraph(Phased).c_str());
  AmPhaseStats AmStats = runAssignmentMotionPhase(Phased);
  std::printf("\n-- after assignment motion (Figure 14), %u iterations, "
              "%u eliminated --\n%s",
              AmStats.Iterations, AmStats.Eliminated,
              printGraph(Phased).c_str());
  runFinalFlush(Phased);
  FlowGraph Final = simplified(Phased);
  std::printf("\n-- after final flush (Figures 5/15) --\n%s",
              printGraph(Final).c_str());
  printClaim("final program is exactly the paper's Figure 5",
             equivalentModuloTemps(Final, figure5()));

  // Dynamic comparison (Figure 6: the separate effects both fail).
  FlowGraph Uniform = runUniformEmAm(Fig4);
  FlowGraph Em = runLazyCodeMotion(Fig4);
  FlowGraph AmOnly = runAssignmentMotionOnly(Fig4);
  Counters COrig = measure(Fig4, Inputs, 1);
  Counters CU = measure(Uniform, Inputs, 1);
  Counters CEm = measure(Em, Inputs, 1);
  Counters CAm = measure(AmOnly, Inputs, 1);
  printTable("Running example, loop iterating (deterministic condition)",
             {{"original (Fig 4)", COrig},
              {"EM only (Fig 6a)", CEm},
              {"AM only (Fig 6b)", CAm},
              {"uniform EM & AM (Fig 5)", CU}});
  printClaim("uniform beats EM alone in expr-evals",
             CU.ExprEvals < CEm.ExprEvals);
  printClaim("uniform beats AM alone in expr-evals",
             CU.ExprEvals < CAm.ExprEvals);
  printClaim("uniform beats the original in expr-evals",
             CU.ExprEvals < COrig.ExprEvals);
}

void BM_UniformOnRunningExample(benchmark::State &State) {
  FlowGraph G = figure4();
  for (auto _ : State) {
    UniformStats Stats;
    benchmark::DoNotOptimize(runUniformEmAm(G, UniformOptions(), &Stats));
  }
}
BENCHMARK(BM_UniformOnRunningExample);

void BM_AmPhaseOnRunningExample(benchmark::State &State) {
  FlowGraph Prepared = figure4();
  Prepared.splitCriticalEdges();
  runInitializationPhase(Prepared);
  for (auto _ : State) {
    FlowGraph Work = Prepared;
    benchmark::DoNotOptimize(runAssignmentMotionPhase(Work));
  }
}
BENCHMARK(BM_AmPhaseOnRunningExample);

} // namespace

AM_BENCH_MAIN(study)
