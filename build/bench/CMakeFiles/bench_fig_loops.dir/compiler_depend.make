# Empty compiler generated dependencies file for bench_fig_loops.
# This may be replaced when dependencies are built.
