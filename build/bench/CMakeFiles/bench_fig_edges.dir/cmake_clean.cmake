file(REMOVE_RECURSE
  "CMakeFiles/bench_fig_edges.dir/bench_fig_edges.cpp.o"
  "CMakeFiles/bench_fig_edges.dir/bench_fig_edges.cpp.o.d"
  "bench_fig_edges"
  "bench_fig_edges.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig_edges.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
