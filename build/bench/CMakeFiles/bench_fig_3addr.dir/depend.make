# Empty dependencies file for bench_fig_3addr.
# This may be replaced when dependencies are built.
