file(REMOVE_RECURSE
  "CMakeFiles/bench_fig_3addr.dir/bench_fig_3addr.cpp.o"
  "CMakeFiles/bench_fig_3addr.dir/bench_fig_3addr.cpp.o.d"
  "bench_fig_3addr"
  "bench_fig_3addr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig_3addr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
