file(REMOVE_RECURSE
  "CMakeFiles/bench_fig_running.dir/bench_fig_running.cpp.o"
  "CMakeFiles/bench_fig_running.dir/bench_fig_running.cpp.o.d"
  "bench_fig_running"
  "bench_fig_running.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig_running.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
