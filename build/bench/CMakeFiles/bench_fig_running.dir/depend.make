# Empty dependencies file for bench_fig_running.
# This may be replaced when dependencies are built.
