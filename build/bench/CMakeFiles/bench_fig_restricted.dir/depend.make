# Empty dependencies file for bench_fig_restricted.
# This may be replaced when dependencies are built.
