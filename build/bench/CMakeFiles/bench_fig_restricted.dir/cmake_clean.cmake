file(REMOVE_RECURSE
  "CMakeFiles/bench_fig_restricted.dir/bench_fig_restricted.cpp.o"
  "CMakeFiles/bench_fig_restricted.dir/bench_fig_restricted.cpp.o.d"
  "bench_fig_restricted"
  "bench_fig_restricted.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig_restricted.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
