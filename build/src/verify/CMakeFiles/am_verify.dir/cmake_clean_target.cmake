file(REMOVE_RECURSE
  "libam_verify.a"
)
