# Empty dependencies file for am_verify.
# This may be replaced when dependencies are built.
