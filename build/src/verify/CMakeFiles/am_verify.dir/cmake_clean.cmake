file(REMOVE_RECURSE
  "CMakeFiles/am_verify.dir/AdversarialSearch.cpp.o"
  "CMakeFiles/am_verify.dir/AdversarialSearch.cpp.o.d"
  "CMakeFiles/am_verify.dir/Enumerate.cpp.o"
  "CMakeFiles/am_verify.dir/Enumerate.cpp.o.d"
  "libam_verify.a"
  "libam_verify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/am_verify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
