# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("ir")
subdirs("parser")
subdirs("dfa")
subdirs("analysis")
subdirs("transform")
subdirs("interp")
subdirs("gen")
subdirs("figures")
subdirs("verify")
