file(REMOVE_RECURSE
  "libam_transform.a"
)
