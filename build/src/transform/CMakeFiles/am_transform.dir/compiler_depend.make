# Empty compiler generated dependencies file for am_transform.
# This may be replaced when dependencies are built.
