file(REMOVE_RECURSE
  "CMakeFiles/am_transform.dir/AssignmentHoisting.cpp.o"
  "CMakeFiles/am_transform.dir/AssignmentHoisting.cpp.o.d"
  "CMakeFiles/am_transform.dir/AssignmentMotion.cpp.o"
  "CMakeFiles/am_transform.dir/AssignmentMotion.cpp.o.d"
  "CMakeFiles/am_transform.dir/BusyCodeMotion.cpp.o"
  "CMakeFiles/am_transform.dir/BusyCodeMotion.cpp.o.d"
  "CMakeFiles/am_transform.dir/CopyPropagation.cpp.o"
  "CMakeFiles/am_transform.dir/CopyPropagation.cpp.o.d"
  "CMakeFiles/am_transform.dir/FinalFlush.cpp.o"
  "CMakeFiles/am_transform.dir/FinalFlush.cpp.o.d"
  "CMakeFiles/am_transform.dir/Initialization.cpp.o"
  "CMakeFiles/am_transform.dir/Initialization.cpp.o.d"
  "CMakeFiles/am_transform.dir/LazyCodeMotion.cpp.o"
  "CMakeFiles/am_transform.dir/LazyCodeMotion.cpp.o.d"
  "CMakeFiles/am_transform.dir/LocalValueNumbering.cpp.o"
  "CMakeFiles/am_transform.dir/LocalValueNumbering.cpp.o.d"
  "CMakeFiles/am_transform.dir/Normalize.cpp.o"
  "CMakeFiles/am_transform.dir/Normalize.cpp.o.d"
  "CMakeFiles/am_transform.dir/PartialDeadCodeElim.cpp.o"
  "CMakeFiles/am_transform.dir/PartialDeadCodeElim.cpp.o.d"
  "CMakeFiles/am_transform.dir/Pipeline.cpp.o"
  "CMakeFiles/am_transform.dir/Pipeline.cpp.o.d"
  "CMakeFiles/am_transform.dir/RedundantAssignElim.cpp.o"
  "CMakeFiles/am_transform.dir/RedundantAssignElim.cpp.o.d"
  "CMakeFiles/am_transform.dir/RestrictedAssignmentMotion.cpp.o"
  "CMakeFiles/am_transform.dir/RestrictedAssignmentMotion.cpp.o.d"
  "CMakeFiles/am_transform.dir/UniformEmAm.cpp.o"
  "CMakeFiles/am_transform.dir/UniformEmAm.cpp.o.d"
  "libam_transform.a"
  "libam_transform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/am_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
