
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transform/AssignmentHoisting.cpp" "src/transform/CMakeFiles/am_transform.dir/AssignmentHoisting.cpp.o" "gcc" "src/transform/CMakeFiles/am_transform.dir/AssignmentHoisting.cpp.o.d"
  "/root/repo/src/transform/AssignmentMotion.cpp" "src/transform/CMakeFiles/am_transform.dir/AssignmentMotion.cpp.o" "gcc" "src/transform/CMakeFiles/am_transform.dir/AssignmentMotion.cpp.o.d"
  "/root/repo/src/transform/BusyCodeMotion.cpp" "src/transform/CMakeFiles/am_transform.dir/BusyCodeMotion.cpp.o" "gcc" "src/transform/CMakeFiles/am_transform.dir/BusyCodeMotion.cpp.o.d"
  "/root/repo/src/transform/CopyPropagation.cpp" "src/transform/CMakeFiles/am_transform.dir/CopyPropagation.cpp.o" "gcc" "src/transform/CMakeFiles/am_transform.dir/CopyPropagation.cpp.o.d"
  "/root/repo/src/transform/FinalFlush.cpp" "src/transform/CMakeFiles/am_transform.dir/FinalFlush.cpp.o" "gcc" "src/transform/CMakeFiles/am_transform.dir/FinalFlush.cpp.o.d"
  "/root/repo/src/transform/Initialization.cpp" "src/transform/CMakeFiles/am_transform.dir/Initialization.cpp.o" "gcc" "src/transform/CMakeFiles/am_transform.dir/Initialization.cpp.o.d"
  "/root/repo/src/transform/LazyCodeMotion.cpp" "src/transform/CMakeFiles/am_transform.dir/LazyCodeMotion.cpp.o" "gcc" "src/transform/CMakeFiles/am_transform.dir/LazyCodeMotion.cpp.o.d"
  "/root/repo/src/transform/LocalValueNumbering.cpp" "src/transform/CMakeFiles/am_transform.dir/LocalValueNumbering.cpp.o" "gcc" "src/transform/CMakeFiles/am_transform.dir/LocalValueNumbering.cpp.o.d"
  "/root/repo/src/transform/Normalize.cpp" "src/transform/CMakeFiles/am_transform.dir/Normalize.cpp.o" "gcc" "src/transform/CMakeFiles/am_transform.dir/Normalize.cpp.o.d"
  "/root/repo/src/transform/PartialDeadCodeElim.cpp" "src/transform/CMakeFiles/am_transform.dir/PartialDeadCodeElim.cpp.o" "gcc" "src/transform/CMakeFiles/am_transform.dir/PartialDeadCodeElim.cpp.o.d"
  "/root/repo/src/transform/Pipeline.cpp" "src/transform/CMakeFiles/am_transform.dir/Pipeline.cpp.o" "gcc" "src/transform/CMakeFiles/am_transform.dir/Pipeline.cpp.o.d"
  "/root/repo/src/transform/RedundantAssignElim.cpp" "src/transform/CMakeFiles/am_transform.dir/RedundantAssignElim.cpp.o" "gcc" "src/transform/CMakeFiles/am_transform.dir/RedundantAssignElim.cpp.o.d"
  "/root/repo/src/transform/RestrictedAssignmentMotion.cpp" "src/transform/CMakeFiles/am_transform.dir/RestrictedAssignmentMotion.cpp.o" "gcc" "src/transform/CMakeFiles/am_transform.dir/RestrictedAssignmentMotion.cpp.o.d"
  "/root/repo/src/transform/UniformEmAm.cpp" "src/transform/CMakeFiles/am_transform.dir/UniformEmAm.cpp.o" "gcc" "src/transform/CMakeFiles/am_transform.dir/UniformEmAm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/am_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/am_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/dfa/CMakeFiles/am_dfa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
