file(REMOVE_RECURSE
  "libam_dfa.a"
)
