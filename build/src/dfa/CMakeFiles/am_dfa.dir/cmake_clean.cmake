file(REMOVE_RECURSE
  "CMakeFiles/am_dfa.dir/Dataflow.cpp.o"
  "CMakeFiles/am_dfa.dir/Dataflow.cpp.o.d"
  "libam_dfa.a"
  "libam_dfa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/am_dfa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
