# Empty compiler generated dependencies file for am_dfa.
# This may be replaced when dependencies are built.
