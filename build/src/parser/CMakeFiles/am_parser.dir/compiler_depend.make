# Empty compiler generated dependencies file for am_parser.
# This may be replaced when dependencies are built.
