file(REMOVE_RECURSE
  "CMakeFiles/am_parser.dir/Lexer.cpp.o"
  "CMakeFiles/am_parser.dir/Lexer.cpp.o.d"
  "CMakeFiles/am_parser.dir/Parser.cpp.o"
  "CMakeFiles/am_parser.dir/Parser.cpp.o.d"
  "libam_parser.a"
  "libam_parser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/am_parser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
