file(REMOVE_RECURSE
  "libam_parser.a"
)
