# Empty dependencies file for am_gen.
# This may be replaced when dependencies are built.
