file(REMOVE_RECURSE
  "libam_gen.a"
)
