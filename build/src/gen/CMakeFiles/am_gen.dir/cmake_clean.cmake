file(REMOVE_RECURSE
  "CMakeFiles/am_gen.dir/RandomProgram.cpp.o"
  "CMakeFiles/am_gen.dir/RandomProgram.cpp.o.d"
  "libam_gen.a"
  "libam_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/am_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
