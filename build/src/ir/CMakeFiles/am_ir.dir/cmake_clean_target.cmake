file(REMOVE_RECURSE
  "libam_ir.a"
)
