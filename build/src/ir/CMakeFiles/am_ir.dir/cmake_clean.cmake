file(REMOVE_RECURSE
  "CMakeFiles/am_ir.dir/FlowGraph.cpp.o"
  "CMakeFiles/am_ir.dir/FlowGraph.cpp.o.d"
  "CMakeFiles/am_ir.dir/Patterns.cpp.o"
  "CMakeFiles/am_ir.dir/Patterns.cpp.o.d"
  "CMakeFiles/am_ir.dir/Printer.cpp.o"
  "CMakeFiles/am_ir.dir/Printer.cpp.o.d"
  "libam_ir.a"
  "libam_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/am_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
