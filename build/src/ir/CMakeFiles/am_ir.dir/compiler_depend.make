# Empty compiler generated dependencies file for am_ir.
# This may be replaced when dependencies are built.
