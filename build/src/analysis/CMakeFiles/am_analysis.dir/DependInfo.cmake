
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/Annotate.cpp" "src/analysis/CMakeFiles/am_analysis.dir/Annotate.cpp.o" "gcc" "src/analysis/CMakeFiles/am_analysis.dir/Annotate.cpp.o.d"
  "/root/repo/src/analysis/CopyAnalysis.cpp" "src/analysis/CMakeFiles/am_analysis.dir/CopyAnalysis.cpp.o" "gcc" "src/analysis/CMakeFiles/am_analysis.dir/CopyAnalysis.cpp.o.d"
  "/root/repo/src/analysis/Dominators.cpp" "src/analysis/CMakeFiles/am_analysis.dir/Dominators.cpp.o" "gcc" "src/analysis/CMakeFiles/am_analysis.dir/Dominators.cpp.o.d"
  "/root/repo/src/analysis/LcmAnalyses.cpp" "src/analysis/CMakeFiles/am_analysis.dir/LcmAnalyses.cpp.o" "gcc" "src/analysis/CMakeFiles/am_analysis.dir/LcmAnalyses.cpp.o.d"
  "/root/repo/src/analysis/Lifetime.cpp" "src/analysis/CMakeFiles/am_analysis.dir/Lifetime.cpp.o" "gcc" "src/analysis/CMakeFiles/am_analysis.dir/Lifetime.cpp.o.d"
  "/root/repo/src/analysis/Liveness.cpp" "src/analysis/CMakeFiles/am_analysis.dir/Liveness.cpp.o" "gcc" "src/analysis/CMakeFiles/am_analysis.dir/Liveness.cpp.o.d"
  "/root/repo/src/analysis/PaperAnalyses.cpp" "src/analysis/CMakeFiles/am_analysis.dir/PaperAnalyses.cpp.o" "gcc" "src/analysis/CMakeFiles/am_analysis.dir/PaperAnalyses.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dfa/CMakeFiles/am_dfa.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/am_ir.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
