file(REMOVE_RECURSE
  "libam_analysis.a"
)
