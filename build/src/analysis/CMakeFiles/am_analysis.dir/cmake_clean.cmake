file(REMOVE_RECURSE
  "CMakeFiles/am_analysis.dir/Annotate.cpp.o"
  "CMakeFiles/am_analysis.dir/Annotate.cpp.o.d"
  "CMakeFiles/am_analysis.dir/CopyAnalysis.cpp.o"
  "CMakeFiles/am_analysis.dir/CopyAnalysis.cpp.o.d"
  "CMakeFiles/am_analysis.dir/Dominators.cpp.o"
  "CMakeFiles/am_analysis.dir/Dominators.cpp.o.d"
  "CMakeFiles/am_analysis.dir/LcmAnalyses.cpp.o"
  "CMakeFiles/am_analysis.dir/LcmAnalyses.cpp.o.d"
  "CMakeFiles/am_analysis.dir/Lifetime.cpp.o"
  "CMakeFiles/am_analysis.dir/Lifetime.cpp.o.d"
  "CMakeFiles/am_analysis.dir/Liveness.cpp.o"
  "CMakeFiles/am_analysis.dir/Liveness.cpp.o.d"
  "CMakeFiles/am_analysis.dir/PaperAnalyses.cpp.o"
  "CMakeFiles/am_analysis.dir/PaperAnalyses.cpp.o.d"
  "libam_analysis.a"
  "libam_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/am_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
