file(REMOVE_RECURSE
  "libam_figures.a"
)
