# Empty dependencies file for am_figures.
# This may be replaced when dependencies are built.
