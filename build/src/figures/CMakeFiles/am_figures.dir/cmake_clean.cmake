file(REMOVE_RECURSE
  "CMakeFiles/am_figures.dir/PaperFigures.cpp.o"
  "CMakeFiles/am_figures.dir/PaperFigures.cpp.o.d"
  "libam_figures.a"
  "libam_figures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/am_figures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
