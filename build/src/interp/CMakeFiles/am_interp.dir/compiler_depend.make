# Empty compiler generated dependencies file for am_interp.
# This may be replaced when dependencies are built.
