file(REMOVE_RECURSE
  "CMakeFiles/am_interp.dir/Equivalence.cpp.o"
  "CMakeFiles/am_interp.dir/Equivalence.cpp.o.d"
  "CMakeFiles/am_interp.dir/Interpreter.cpp.o"
  "CMakeFiles/am_interp.dir/Interpreter.cpp.o.d"
  "libam_interp.a"
  "libam_interp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/am_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
