file(REMOVE_RECURSE
  "libam_interp.a"
)
