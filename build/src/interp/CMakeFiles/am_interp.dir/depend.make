# Empty dependencies file for am_interp.
# This may be replaced when dependencies are built.
