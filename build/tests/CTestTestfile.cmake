# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/ir_test[1]_include.cmake")
include("/root/repo/build/tests/parser_test[1]_include.cmake")
include("/root/repo/build/tests/dfa_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/transform_test[1]_include.cmake")
include("/root/repo/build/tests/interp_test[1]_include.cmake")
include("/root/repo/build/tests/gen_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/pde_test[1]_include.cmake")
include("/root/repo/build/tests/lifetime_test[1]_include.cmake")
include("/root/repo/build/tests/verify_test[1]_include.cmake")
include("/root/repo/build/tests/annotate_test[1]_include.cmake")
include("/root/repo/build/tests/roundtrip_test[1]_include.cmake")
include("/root/repo/build/tests/nested_expr_test[1]_include.cmake")
include("/root/repo/build/tests/dominators_test[1]_include.cmake")
include("/root/repo/build/tests/confluence_test[1]_include.cmake")
include("/root/repo/build/tests/edge_cases_test[1]_include.cmake")
include("/root/repo/build/tests/pipeline_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/invariants_test[1]_include.cmake")
include("/root/repo/build/tests/shapes_test[1]_include.cmake")
include("/root/repo/build/tests/builder_test[1]_include.cmake")
include("/root/repo/build/tests/misc_test[1]_include.cmake")
include("/root/repo/build/tests/enumerate_test[1]_include.cmake")
