# Empty compiler generated dependencies file for confluence_test.
# This may be replaced when dependencies are built.
