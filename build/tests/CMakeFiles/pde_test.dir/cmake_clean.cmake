file(REMOVE_RECURSE
  "CMakeFiles/pde_test.dir/pde_test.cpp.o"
  "CMakeFiles/pde_test.dir/pde_test.cpp.o.d"
  "pde_test"
  "pde_test.pdb"
  "pde_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pde_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
