
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/support_test.cpp" "tests/CMakeFiles/support_test.dir/support_test.cpp.o" "gcc" "tests/CMakeFiles/support_test.dir/support_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/interp/CMakeFiles/am_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/am_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/figures/CMakeFiles/am_figures.dir/DependInfo.cmake"
  "/root/repo/build/src/parser/CMakeFiles/am_parser.dir/DependInfo.cmake"
  "/root/repo/build/src/verify/CMakeFiles/am_verify.dir/DependInfo.cmake"
  "/root/repo/build/src/transform/CMakeFiles/am_transform.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/am_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/dfa/CMakeFiles/am_dfa.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/am_ir.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
