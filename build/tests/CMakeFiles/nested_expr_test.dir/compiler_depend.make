# Empty compiler generated dependencies file for nested_expr_test.
# This may be replaced when dependencies are built.
