file(REMOVE_RECURSE
  "CMakeFiles/nested_expr_test.dir/nested_expr_test.cpp.o"
  "CMakeFiles/nested_expr_test.dir/nested_expr_test.cpp.o.d"
  "nested_expr_test"
  "nested_expr_test.pdb"
  "nested_expr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nested_expr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
