file(REMOVE_RECURSE
  "CMakeFiles/amopt.dir/amopt.cpp.o"
  "CMakeFiles/amopt.dir/amopt.cpp.o.d"
  "amopt"
  "amopt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amopt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
