# Empty compiler generated dependencies file for amopt.
# This may be replaced when dependencies are built.
