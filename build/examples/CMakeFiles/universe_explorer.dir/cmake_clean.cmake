file(REMOVE_RECURSE
  "CMakeFiles/universe_explorer.dir/universe_explorer.cpp.o"
  "CMakeFiles/universe_explorer.dir/universe_explorer.cpp.o.d"
  "universe_explorer"
  "universe_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/universe_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
