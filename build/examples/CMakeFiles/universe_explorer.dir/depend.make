# Empty dependencies file for universe_explorer.
# This may be replaced when dependencies are built.
