file(REMOVE_RECURSE
  "CMakeFiles/compare_passes.dir/compare_passes.cpp.o"
  "CMakeFiles/compare_passes.dir/compare_passes.cpp.o.d"
  "compare_passes"
  "compare_passes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compare_passes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
