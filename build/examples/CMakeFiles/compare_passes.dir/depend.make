# Empty dependencies file for compare_passes.
# This may be replaced when dependencies are built.
