# Empty dependencies file for amrun.
# This may be replaced when dependencies are built.
