file(REMOVE_RECURSE
  "CMakeFiles/amrun.dir/amrun.cpp.o"
  "CMakeFiles/amrun.dir/amrun.cpp.o.d"
  "amrun"
  "amrun.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amrun.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
