file(REMOVE_RECURSE
  "CMakeFiles/loop_invariant.dir/loop_invariant.cpp.o"
  "CMakeFiles/loop_invariant.dir/loop_invariant.cpp.o.d"
  "loop_invariant"
  "loop_invariant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loop_invariant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
