//===- examples/universe_explorer.cpp - Sampling the EM/AM universe -------===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
//
// Theorem 5.2 made tangible: sample random members of the universe of
// EM/AM-transformed programs for the paper's running example and plot
// where the uniform algorithm's result sits.  Every sampled member is
// semantically equivalent; none evaluates fewer expressions.
//
//===----------------------------------------------------------------------===//

#include "figures/PaperFigures.h"
#include "interp/Equivalence.h"
#include "ir/Printer.h"
#include "transform/UniformEmAm.h"
#include "verify/AdversarialSearch.h"

#include <algorithm>
#include <cstdio>
#include <map>

using namespace am;

int main() {
  FlowGraph G = figure4();
  FlowGraph Uniform = runUniformEmAm(G);

  const std::unordered_map<std::string, int64_t> Inputs = {
      {"c", 1}, {"d", 2}, {"x", 40}, {"z", 10}, {"i", 1}};

  auto Evals = [&](const FlowGraph &P) {
    return Interpreter::execute(P, Inputs).Stats.ExprEvaluations;
  };

  uint64_t Original = Evals(G);
  uint64_t Optimal = Evals(Uniform);

  std::printf("sampling 400 random members of the EM/AM universe of the "
              "running example...\n\n");
  std::map<uint64_t, unsigned> Histogram;
  unsigned Inequivalent = 0;
  for (uint64_t Seed = 0; Seed < 400; ++Seed) {
    FlowGraph Member = randomUniverseMember(G, Seed);
    if (!checkEquivalent(G, Member, Inputs).Equivalent) {
      ++Inequivalent; // would be a bug; counted for honesty
      continue;
    }
    ++Histogram[Evals(Member)];
  }

  std::printf("expression evaluations on one execution "
              "(loop iterates several times):\n");
  for (const auto &[Count, Members] : Histogram) {
    std::printf("  %3llu evals  %4u members ", (unsigned long long)Count,
                Members);
    for (unsigned Bar = 0; Bar < std::min(Members, 60u); ++Bar)
      std::printf("#");
    if (Count == Optimal)
      std::printf("   <-- uniform EM & AM");
    if (Count == Original)
      std::printf("   <-- original program");
    std::printf("\n");
  }
  std::printf("\noriginal: %llu evals; uniform EM & AM: %llu evals; "
              "best sampled member: %llu evals\n",
              (unsigned long long)Original, (unsigned long long)Optimal,
              (unsigned long long)Histogram.begin()->first);
  std::printf("inequivalent members: %u (must be 0)\n", Inequivalent);
  std::printf("\nTheorem 5.2: no member of the universe beats the uniform "
              "result — the histogram's\nleft edge is exactly the uniform "
              "algorithm's count.\n");
  return Inequivalent == 0 &&
                 Histogram.begin()->first >= Optimal
             ? 0
             : 1;
}
