//===- examples/compare_passes.cpp - Side-by-side pass comparison ---------===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
//
// Runs every pass of the library over the paper's figure programs and a
// few random workloads, printing a compact scoreboard of dynamic costs.
// This is the "which pass should I use" demo: uniform EM & AM always sits
// in the best column for expression evaluations.
//
//===----------------------------------------------------------------------===//

#include "figures/PaperFigures.h"
#include "gen/RandomProgram.h"
#include "interp/Interpreter.h"
#include "transform/CopyPropagation.h"
#include "transform/LazyCodeMotion.h"
#include "transform/RestrictedAssignmentMotion.h"
#include "transform/UniformEmAm.h"

#include <cstdio>
#include <string>
#include <vector>

using namespace am;

namespace {

struct Workload {
  std::string Name;
  FlowGraph Graph;
};

uint64_t totalEvals(const FlowGraph &G) {
  uint64_t Total = 0;
  Interpreter::Options Opts;
  Opts.MaxSteps = 20000;
  for (uint64_t Seed = 0; Seed < 8; ++Seed) {
    std::unordered_map<std::string, int64_t> In = {
        {"a", 2},  {"b", 3},  {"c", 5},  {"d", 7},  {"x", 20}, {"y", 1},
        {"z", 4},  {"i", 0},  {"n", 6},  {"v0", 1}, {"v1", -2}, {"v2", 3}};
    Total += Interpreter::execute(G, In, Seed, Opts).Stats.ExprEvaluations;
  }
  return Total;
}

} // namespace

int main() {
  std::vector<Workload> Workloads;
  Workloads.push_back({"fig1 (EM motivation)", figure1a()});
  Workloads.push_back({"fig2 (AM motivation)", figure2a()});
  Workloads.push_back({"fig4 (running example)", figure4()});
  Workloads.push_back({"fig8 (blocked motion)", figure8()});
  Workloads.push_back({"fig16 (tradeoff)", figure16()});
  Workloads.push_back({"fig18 (3-address loop)", figure18b()});
  GenOptions Opts;
  Opts.TargetStmts = 40;
  for (uint64_t Seed = 0; Seed < 4; ++Seed)
    Workloads.push_back({"random #" + std::to_string(Seed),
                         generateStructuredProgram(Seed, Opts)});

  std::printf("expression evaluations over 8 executions "
              "(lower is better)\n\n");
  std::printf("%-24s %10s %10s %10s %10s %10s\n", "workload", "orig", "lcm",
              "am", "restr", "uniform");
  for (Workload &W : Workloads) {
    FlowGraph Lcm = runLazyCodeMotion(W.Graph);
    FlowGraph Am = runAssignmentMotionOnly(W.Graph);
    FlowGraph Restr = runRestrictedAssignmentMotion(W.Graph);
    FlowGraph Uniform = runUniformEmAm(W.Graph);
    std::printf("%-24s %10llu %10llu %10llu %10llu %10llu\n", W.Name.c_str(),
                (unsigned long long)totalEvals(W.Graph),
                (unsigned long long)totalEvals(Lcm),
                (unsigned long long)totalEvals(Am),
                (unsigned long long)totalEvals(Restr),
                (unsigned long long)totalEvals(Uniform));
  }
  std::printf("\nAll passes preserve program semantics; see the test suite "
              "for the machine-checked version of this table.\n");
  return 0;
}
