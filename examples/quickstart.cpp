//===- examples/quickstart.cpp - Five-minute tour of the library ----------===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
//
// Parses the paper's running example (Figure 4), runs the uniform EM & AM
// algorithm, and shows the before/after programs together with the dynamic
// counters the paper's theorems speak about.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "figures/PaperFigures.h"
#include "interp/Interpreter.h"
#include "ir/Printer.h"
#include "transform/UniformEmAm.h"

#include <cstdio>

using namespace am;

int main() {
  // The running example of the paper (Figure 4).  You could equally parse
  // your own program with am::parseProgram("program { ... }").
  FlowGraph Before = figure4();

  UniformStats Stats;
  FlowGraph After = runUniformEmAm(Before, UniformOptions(), &Stats);

  std::printf("=== before (Figure 4) ===\n%s\n",
              printGraph(Before).c_str());
  std::printf("=== after uniform EM & AM (expected: Figure 5) ===\n%s\n",
              printGraph(After).c_str());
  std::printf("pipeline: %u edges split, %u decompositions, "
              "%u AM iterations, %u assignments eliminated\n\n",
              Stats.EdgesSplit, Stats.Decompositions,
              Stats.AmPhase.Iterations, Stats.AmPhase.Eliminated);

  // Execute both on the same inputs and compare the dynamic counters.
  std::unordered_map<std::string, int64_t> Inputs = {
      {"c", 3}, {"d", 4}, {"i", 0}, {"x", 1}, {"z", 2}, {"y", 0}};
  ExecResult RunBefore = Interpreter::execute(Before, Inputs);
  ExecResult RunAfter = Interpreter::execute(After, Inputs);

  std::printf("same output trace: %s\n",
              RunBefore.Output == RunAfter.Output ? "yes" : "NO (bug!)");
  std::printf("expression evaluations: %llu -> %llu\n",
              (unsigned long long)RunBefore.Stats.ExprEvaluations,
              (unsigned long long)RunAfter.Stats.ExprEvaluations);
  std::printf("assignment executions:  %llu -> %llu\n",
              (unsigned long long)RunBefore.Stats.AssignExecutions,
              (unsigned long long)RunAfter.Stats.AssignExecutions);
  std::printf("temporary assignments:  %llu -> %llu\n",
              (unsigned long long)RunBefore.Stats.TempAssignExecutions,
              (unsigned long long)RunAfter.Stats.TempAssignExecutions);
  return 0;
}
