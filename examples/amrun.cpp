//===- examples/amrun.cpp - Program runner with counters --------*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
//
// amrun — execute a program and report its trace and dynamic counters.
//
//   amrun [--set var=value]... [--seed N] [--max-steps N] [FILE]
//
// The companion of amopt: optimize with amopt, then measure the effect
// with amrun.  Example:
//
//   amrun prog.am --set n=100
//   amopt prog.am | amrun --set n=100     # same trace, fewer evaluations
//
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"
#include "parser/Parser.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include <unistd.h>

using namespace am;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: amrun [--set var=value]... [--seed N] "
               "[--max-steps N] [FILE]\n");
  return 2;
}

} // namespace

int main(int argc, char **argv) {
  std::unordered_map<std::string, int64_t> Inputs;
  uint64_t Seed = 0;
  Interpreter::Options Opts;
  std::string File;

  for (int Idx = 1; Idx < argc; ++Idx) {
    std::string Arg = argv[Idx];
    if (Arg.rfind("--set", 0) == 0) {
      std::string Binding =
          Arg == "--set" && Idx + 1 < argc ? argv[++Idx] : Arg.substr(6);
      size_t Eq = Binding.find('=');
      if (Eq == std::string::npos || Eq == 0) {
        std::fprintf(stderr, "amrun: bad --set '%s' (want var=value)\n",
                     Binding.c_str());
        return usage();
      }
      Inputs[Binding.substr(0, Eq)] =
          std::strtoll(Binding.c_str() + Eq + 1, nullptr, 10);
    } else if (Arg.rfind("--seed=", 0) == 0) {
      Seed = std::strtoull(Arg.c_str() + 7, nullptr, 10);
    } else if (Arg.rfind("--max-steps=", 0) == 0) {
      Opts.MaxSteps = std::strtoull(Arg.c_str() + 12, nullptr, 10);
    } else if (Arg == "--help" || Arg == "-h") {
      return usage();
    } else if (!Arg.empty() && Arg[0] == '-') {
      return usage();
    } else {
      File = Arg;
    }
  }

  std::string Source;
  if (!File.empty()) {
    std::ifstream In(File);
    if (!In) {
      std::fprintf(stderr, "amrun: cannot open '%s'\n", File.c_str());
      return 1;
    }
    std::ostringstream Buf;
    Buf << In.rdbuf();
    Source = Buf.str();
  } else if (!isatty(STDIN_FILENO)) {
    std::ostringstream Buf;
    Buf << std::cin.rdbuf();
    Source = Buf.str();
  } else {
    std::fprintf(stderr, "amrun: no input program\n");
    return usage();
  }

  ParseResult R = parseProgram(Source);
  if (!R.ok()) {
    std::fprintf(stderr, "amrun: %s\n", R.Error.c_str());
    return 1;
  }

  ExecResult Run = Interpreter::execute(R.Graph, Inputs, Seed, Opts);
  std::printf("out:");
  for (int64_t V : Run.Output)
    std::printf(" %lld", (long long)V);
  std::printf("\n");
  switch (Run.St) {
  case ExecResult::Status::Finished:
    std::printf("status: finished\n");
    break;
  case ExecResult::Status::Trapped:
    std::printf("status: trapped (%s)\n", Run.TrapMessage.c_str());
    break;
  case ExecResult::Status::StepLimit:
    std::printf("status: step limit reached\n");
    break;
  }
  std::printf("expr-evals: %llu\nassigns: %llu\ntemp-assigns: %llu\n"
              "steps: %llu\nbranches: %llu\n",
              (unsigned long long)Run.Stats.ExprEvaluations,
              (unsigned long long)Run.Stats.AssignExecutions,
              (unsigned long long)Run.Stats.TempAssignExecutions,
              (unsigned long long)Run.Stats.Steps,
              (unsigned long long)Run.Stats.BranchesExecuted);
  return Run.St == ExecResult::Status::Trapped ? 4 : 0;
}
