//===- examples/loop_invariant.cpp - Loop-invariant assignment motion -----===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
//
// A domain scenario from the paper's introduction: loop-invariant
// computations that classic PRE cannot move because whole *assignments*
// block each other.  We write the program in the structured front-end
// language, optimize it, and measure the per-iteration cost drop.
//
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"
#include "ir/Printer.h"
#include "parser/Parser.h"
#include "transform/LazyCodeMotion.h"
#include "transform/UniformEmAm.h"

#include <cstdio>

using namespace am;

// A filter-like kernel: `scale * gain` and `bias + offset` are invariant,
// but the assignments computing them are blocked by uses inside the loop,
// so expression motion alone cannot clean everything up.
static const char *Source = R"(
program {
  i := 0;
  acc := 0;
  if (n > 0) {
    repeat {
      k := scale * gain;
      base := bias + offset;
      acc := acc + k;
      acc := acc + base;
      i := i + 1;
    } until (i >= n);
  }
  out(acc, i);
}
)";

int main() {
  ParseResult Parsed = parseStructured(Source);
  if (!Parsed.ok()) {
    std::fprintf(stderr, "parse error: %s\n", Parsed.Error.c_str());
    return 1;
  }
  FlowGraph Before = std::move(Parsed.Graph);
  FlowGraph Em = runLazyCodeMotion(Before);
  FlowGraph After = runUniformEmAm(Before);

  std::printf("=== source program ===\n%s\n", Source);
  std::printf("=== CFG before ===\n%s\n", printGraph(Before).c_str());
  std::printf("=== after uniform EM & AM ===\n%s\n",
              printGraph(After).c_str());

  std::unordered_map<std::string, int64_t> Inputs = {
      {"n", 1000}, {"scale", 3}, {"gain", 7}, {"bias", 11}, {"offset", 2}};
  ExecResult RunBefore = Interpreter::execute(Before, Inputs);
  ExecResult RunEm = Interpreter::execute(Em, Inputs);
  ExecResult RunAfter = Interpreter::execute(After, Inputs);

  if (RunBefore.Output != RunAfter.Output ||
      RunBefore.Output != RunEm.Output) {
    std::fprintf(stderr, "BUG: outputs diverged\n");
    return 1;
  }
  std::printf("n = 1000 iterations, identical outputs; dynamic costs:\n");
  std::printf("%-18s %12s %12s %12s\n", "", "expr-evals", "assigns",
              "temp-assigns");
  auto PrintRow = [](const char *Name, const ExecStats &S) {
    std::printf("%-18s %12llu %12llu %12llu\n", Name,
                (unsigned long long)S.ExprEvaluations,
                (unsigned long long)S.AssignExecutions,
                (unsigned long long)S.TempAssignExecutions);
  };
  PrintRow("original", RunBefore.Stats);
  PrintRow("EM only (LCM)", RunEm.Stats);
  PrintRow("uniform EM & AM", RunAfter.Stats);
  return 0;
}
