#!/usr/bin/env python3
"""Schema gate for the fleet telemetry artifacts (tools/ambatch).

Validates the three ambatch outputs:

``--events F.jsonl``
    The streaming ``amevents-v1`` log: a header line announcing the
    schema, pass spec and declared job count, then one self-contained
    JSON record per job with the required identity, status, timing and
    counter fields.  A truncated *final* line is tolerated (that is the
    format's crash contract) but counted; truncation anywhere else, or a
    malformed field, fails.

``--aggregate F.json``
    The deterministic ``amagg-v1`` cross-job summary: schema, job counts
    consistent between the status tally and the header, and per-counter
    invariants (min <= mean <= max, histogram population == reporting
    jobs, p50 <= p95 <= p99).  The aggregate must not contain any
    wall-clock field — its determinism contract depends on that.

``--report F.html``
    The dashboard (or diff) document: self-contained HTML with inline
    SVG charts and the table view, no external asset references.

Any subset of the three may be given; each is validated independently.
``--jobs N`` additionally pins the expected job count.

Exit codes: 0 ok, 1 validation failure, 2 usage/environment.
"""

import argparse
import json
import sys

EVENT_REQUIRED = {
    "index": int,
    "name": str,
    "status": str,
    "wall_ns": int,
    "rollbacks": int,
    "limits_hit": bool,
    "blocks_before": int,
    "blocks_after": int,
    "instrs_before": int,
    "instrs_after": int,
    "phases": dict,
    "counters": dict,
    "remarks": dict,
}
# The batch statuses plus the amserved failure envelope (service logs
# reuse the amevents-v1 schema, one record per request).
STATUSES = {"ok", "rolled_back", "limits", "error",
            "timeout", "resource_exhausted", "oversized", "overloaded",
            "bad_request"}


def fail(msg):
    print(f"batch_check: FAIL: {msg}", file=sys.stderr)
    return 1


def check_events(path, expect_jobs):
    with open(path, "rb") as f:
        data = f.read().decode("utf-8", errors="replace")
    lines = data.split("\n")
    unterminated = not data.endswith("\n")
    if data.endswith("\n"):
        lines = lines[:-1]
    if not lines:
        return fail(f"{path}: empty event log")
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as e:
        return fail(f"{path}: header is not JSON: {e}")
    if header.get("schema") != "amevents-v1":
        return fail(f"{path}: schema is {header.get('schema')!r}, "
                    "expected 'amevents-v1'")
    if not isinstance(header.get("passes"), str) or \
       not isinstance(header.get("jobs"), int):
        return fail(f"{path}: header needs string 'passes' and int 'jobs'")

    seen = 0
    truncated = 0
    for lineno, line in enumerate(lines[1:], start=2):
        is_last = lineno == len(lines)
        try:
            rec = json.loads(line)
        except json.JSONDecodeError:
            if is_last and unterminated:
                truncated += 1  # the documented crash contract
                continue
            return fail(f"{path}: line {lineno}: malformed record")
        for key, ty in EVENT_REQUIRED.items():
            if not isinstance(rec.get(key), ty):
                return fail(f"{path}: line {lineno}: field {key!r} missing "
                            f"or not {ty.__name__}")
        if rec["status"] not in STATUSES:
            return fail(f"{path}: line {lineno}: unknown status "
                        f"{rec['status']!r}")
        if rec["status"] == "error" and not rec.get("error"):
            return fail(f"{path}: line {lineno}: status 'error' without "
                        "an 'error' field")
        if rec["status"] != "error" and not isinstance(rec.get("hash"), str):
            return fail(f"{path}: line {lineno}: missing program hash")
        for section in ("phases", "counters", "remarks"):
            for k, v in rec[section].items():
                if not isinstance(v, int) or v < 0:
                    return fail(f"{path}: line {lineno}: {section}[{k!r}] "
                                "is not a non-negative integer")
        seen += 1
    if expect_jobs is not None and seen != expect_jobs:
        return fail(f"{path}: {seen} records, expected {expect_jobs}")
    if expect_jobs is None and seen + truncated != header["jobs"]:
        # A complete run must carry every declared record; one may be
        # lost to the tolerated truncation.
        return fail(f"{path}: {seen} records but header declares "
                    f"{header['jobs']}")
    note = f" ({truncated} truncated)" if truncated else ""
    print(f"batch_check: {path}: OK, {seen} events{note}")
    return 0


def check_aggregate(path, expect_jobs):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != "amagg-v1":
        return fail(f"{path}: schema is {doc.get('schema')!r}, "
                    "expected 'amagg-v1'")
    jobs = doc.get("jobs")
    if not isinstance(jobs, int) or jobs < 0:
        return fail(f"{path}: 'jobs' missing or negative")
    if expect_jobs is not None and jobs != expect_jobs:
        return fail(f"{path}: jobs={jobs}, expected {expect_jobs}")
    skipped = doc.get("skipped_lines", 0)
    if not isinstance(skipped, int) or skipped < 0:
        return fail(f"{path}: 'skipped_lines' not a non-negative int")
    statuses = doc.get("status", {})
    if sum(statuses.values()) != jobs:
        return fail(f"{path}: status tally {sum(statuses.values())} != "
                    f"jobs {jobs}")
    if any("wall" in k for k in doc):
        return fail(f"{path}: wall-clock field in the deterministic "
                    "aggregate")
    for name, c in doc.get("counters", {}).items():
        for key in ("jobs", "sum", "min", "max", "mean", "p50", "p95",
                    "p99", "hist"):
            if key not in c:
                return fail(f"{path}: counter {name!r} missing {key!r}")
        if c["jobs"] > jobs:
            return fail(f"{path}: counter {name!r} reported by more jobs "
                        "than ran")
        if not (c["min"] <= c["mean"] <= c["max"]):
            return fail(f"{path}: counter {name!r}: min <= mean <= max "
                        f"violated ({c['min']}, {c['mean']}, {c['max']})")
        if not (c["p50"] <= c["p95"] <= c["p99"]):
            return fail(f"{path}: counter {name!r}: percentiles not "
                        "monotone")
        if sum(c["hist"].values()) != c["jobs"]:
            return fail(f"{path}: counter {name!r}: histogram holds "
                        f"{sum(c['hist'].values())} samples for "
                        f"{c['jobs']} jobs")
    print(f"batch_check: {path}: OK, {jobs} jobs, "
          f"{len(doc.get('counters', {}))} counters")
    return 0


def check_report(path):
    with open(path, encoding="utf-8") as f:
        doc = f.read()
    is_diff = "<title>fleet diff</title>" in doc.lower()
    checks = [
        ("<!doctype html", "not an HTML document"),
        ("<table", "no table view"),
        ("prefers-color-scheme", "no dark-mode style block"),
    ]
    if not is_diff:  # the diff is ranked tables by design; no chart
        checks.append(("<svg", "no inline SVG chart"))
    for marker, why in checks:
        if marker not in doc.lower():
            return fail(f"{path}: {why}")
    for external in ("src=\"http", "href=\"http", "url(http"):
        if external in doc:
            return fail(f"{path}: external asset reference — the report "
                        "must be self-contained")
    print(f"batch_check: {path}: OK, {len(doc)} bytes")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--events")
    ap.add_argument("--aggregate")
    ap.add_argument("--report")
    ap.add_argument("--jobs", type=int, default=None,
                    help="expected job count for --events/--aggregate")
    args = ap.parse_args()
    if not (args.events or args.aggregate or args.report):
        ap.error("nothing to check: give --events, --aggregate or --report")
    rc = 0
    try:
        if args.events:
            rc |= check_events(args.events, args.jobs)
        if args.aggregate:
            rc |= check_aggregate(args.aggregate, args.jobs)
        if args.report:
            rc |= check_report(args.report)
    except (OSError, json.JSONDecodeError) as e:
        print(f"batch_check: ERROR: {e}", file=sys.stderr)
        return 2
    return rc


if __name__ == "__main__":
    sys.exit(main())
