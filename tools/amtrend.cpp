//===- tools/amtrend.cpp - Run-history trend analytics ---------*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
//
// amtrend — the longitudinal layer over the amhist-v1 run history that
// ambench/ambatch --history grow: per-preset and per-counter time
// series, robust step/changepoint detection that tells genuine
// regressions from machine noise (the calibration series identifies
// machine events; normalized wall cancels CPU speed), and a CI gate.
//
//   amtrend --history=F.jsonl [--gate] [--factor=X] [--kmad=X]
//           [--min-seg=N] [--report=F.html] [--top=K] [--quiet]
//
// Exit codes: 0 no gate failure; 1 at least one series regressed
// (step up of ratio >= --factor) — only with --gate; 2 usage, I/O or
// schema error.
//
//===----------------------------------------------------------------------===//

#include "report/TrendReport.h"
#include "support/ArgParser.h"
#include "support/History.h"
#include "support/Trend.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

using namespace am;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: amtrend --history=F.jsonl [--gate] [--factor=X] [--kmad=X]\n"
      "               [--min-seg=N] [--report=F.html] [--top=K] [--quiet]\n"
      "\n"
      "Analyzes an amhist-v1 run history: calibration-normalized wall\n"
      "series per preset, machine-independent counter series, robust\n"
      "step/changepoint detection and drift estimates, ranked worst\n"
      "first.  --gate fails (exit 1) when any gateable series steps up\n"
      "by >= the gate factor; calibration and workload-shape series\n"
      "never gate.  Exit codes: 0 ok, 1 regression, 2 usage/io/schema.\n");
  return 2;
}

bool parsePositive(const std::string &S, double &Out) {
  char *End = nullptr;
  double V = std::strtod(S.c_str(), &End);
  if (!End || *End != '\0' || V <= 0)
    return false;
  Out = V;
  return true;
}

std::string fmtVal(double V) {
  char Buf[48];
  std::snprintf(Buf, sizeof(Buf), "%.4g", V);
  return Buf;
}

} // namespace

int main(int argc, char **argv) {
  std::string HistoryPath, FactorSpec, KMadSpec, MinSegSpec, ReportPath;
  std::string TopSpec;
  bool Gate = false, Quiet = false;

  support::ArgParser Parser(
      "amtrend",
      "Turns the amhist-v1 run history into per-preset / per-counter\n"
      "time series with robust changepoint detection, a ranked text\n"
      "report, an optional HTML trend dashboard, and a CI gate.");
  Parser.option("--history", HistoryPath, "the amhist-v1 run history to read",
                "F.jsonl");
  Parser.flag("--gate", Gate,
              "exit 1 when any gateable series regressed (step >= factor)");
  Parser.option("--factor", FactorSpec,
                "gate ratio: a step up of After/Before >= X fails "
                "(default 1.5)",
                "X");
  Parser.option("--kmad", KMadSpec,
                "detection threshold in noise units (default 4.0)", "X");
  Parser.option("--min-seg", MinSegSpec,
                "minimum points per segment around a step (default 3)", "N");
  Parser.option("--report", ReportPath,
                "write the self-contained HTML trend dashboard", "F.html");
  Parser.option("--top", TopSpec,
                "series lines in the text report (default 20)", "K");
  Parser.flag("--quiet", Quiet,
              "print only gate failures (and errors) on stderr");
  if (!Parser.parse(argc, argv)) {
    std::fprintf(stderr, "amtrend: %s\n", Parser.error().c_str());
    return usage();
  }
  if (Parser.helpRequested()) {
    std::fputs(Parser.helpText().c_str(), stdout);
    return 0;
  }
  if (HistoryPath.empty() || !Parser.positional().empty()) {
    std::fprintf(stderr, "amtrend: --history=F.jsonl is required\n");
    return usage();
  }

  trend::TrendOptions Opts;
  if (!FactorSpec.empty() && !parsePositive(FactorSpec, Opts.GateFactor)) {
    std::fprintf(stderr, "amtrend: bad --factor '%s'\n", FactorSpec.c_str());
    return usage();
  }
  if (!KMadSpec.empty() && !parsePositive(KMadSpec, Opts.Step.KMad)) {
    std::fprintf(stderr, "amtrend: bad --kmad '%s'\n", KMadSpec.c_str());
    return usage();
  }
  if (!MinSegSpec.empty()) {
    char *End = nullptr;
    long V = std::strtol(MinSegSpec.c_str(), &End, 10);
    if (!End || *End != '\0' || V <= 0) {
      std::fprintf(stderr, "amtrend: bad --min-seg '%s'\n", MinSegSpec.c_str());
      return usage();
    }
    Opts.Step.MinSeg = static_cast<unsigned>(V);
  }
  unsigned TopK = 20;
  if (!TopSpec.empty()) {
    char *End = nullptr;
    long V = std::strtol(TopSpec.c_str(), &End, 10);
    if (!End || *End != '\0' || V <= 0) {
      std::fprintf(stderr, "amtrend: bad --top '%s'\n", TopSpec.c_str());
      return usage();
    }
    TopK = static_cast<unsigned>(V);
  }

  hist::HistoryFile H;
  std::string Err;
  if (!hist::readHistoryFile(HistoryPath, H, &Err)) {
    std::fprintf(stderr, "amtrend: %s\n", Err.c_str());
    return 2;
  }
  if (!Quiet)
    for (const std::string &W : H.Warnings)
      std::fprintf(stderr, "amtrend: warning: %s\n", W.c_str());
  hist::sortByTime(H);

  trend::TrendAnalysis A = trend::analyzeHistory(H.Entries, Opts);
  std::vector<const trend::SeriesVerdict *> Failures = trend::gateFailures(A);

  if (!Quiet) {
    std::printf("# amtrend: %zu entr(ies) in %s, %zu series, gate factor "
                "%.2fx%s\n",
                H.Entries.size(), HistoryPath.c_str(), A.Verdicts.size(),
                Opts.GateFactor, Gate ? " (gating)" : "");
    if (A.CalibrationStepped)
      std::printf("# machine event: the calibration series stepped — raw "
                  "wall changes near it are machine, not code\n");
    std::printf("%-9s %-36s %6s %10s %10s %8s\n", "status", "series", "n",
                "before", "after", "change");
    unsigned Shown = 0;
    for (const trend::SeriesVerdict &V : A.Verdicts) {
      if (Shown >= TopK)
        break;
      ++Shown;
      char Change[24];
      if (V.CP.Found)
        std::snprintf(Change, sizeof(Change), "%.2fx", V.CP.Ratio);
      else if (V.Status == trend::SeriesStatus::Drifting)
        std::snprintf(Change, sizeof(Change), "%+.0f%%", V.DriftRel * 100.0);
      else
        std::snprintf(Change, sizeof(Change), "-");
      std::printf("%-9s %-36s %6zu %10s %10s %8s\n",
                  trend::statusName(V.Status), V.S.Name.c_str(),
                  V.S.Values.size(),
                  V.CP.Found ? fmtVal(V.CP.Before).c_str() : "-",
                  V.CP.Found ? fmtVal(V.CP.After).c_str() : "-", Change);
    }
    if (A.Verdicts.size() > Shown)
      std::printf("# (+%zu more series; raise --top to see them)\n",
                  A.Verdicts.size() - Shown);
    for (const std::string &N : A.Notes)
      std::printf("# note: %s\n", N.c_str());
  }

  for (const trend::SeriesVerdict *V : Failures) {
    std::string At;
    if (V->CP.Index < V->S.Entries.size()) {
      size_t EI = V->S.Entries[V->CP.Index];
      if (EI < H.Entries.size() && !H.Entries[EI].GitSha.empty())
        At = " first bad commit " + H.Entries[EI].GitSha;
    }
    std::fprintf(stderr,
                 "amtrend: REGRESSION: %s stepped %s -> %s (%.2fx >= "
                 "%.2fx) at run %zu%s\n",
                 V->S.Name.c_str(), fmtVal(V->CP.Before).c_str(),
                 fmtVal(V->CP.After).c_str(), V->CP.Ratio, Opts.GateFactor,
                 V->CP.Index, At.c_str());
  }

  if (!ReportPath.empty()) {
    report::TrendReportOptions ROpts;
    ROpts.Title = "amtrend · run history";
    ROpts.GateFactor = Opts.GateFactor;
    std::ofstream Out(ReportPath, std::ios::binary);
    if (Out)
      Out << report::renderTrendDashboard(H, A, ROpts);
    if (!Out.good()) {
      std::fprintf(stderr, "amtrend: cannot write report '%s'\n",
                   ReportPath.c_str());
      return 2;
    }
    if (!Quiet)
      std::fprintf(stderr, "amtrend: trend dashboard written to %s\n",
                   ReportPath.c_str());
  }

  if (Gate && !Failures.empty())
    return 1;
  return 0;
}
