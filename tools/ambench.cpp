//===- tools/ambench.cpp - Wall-clock benchmark runner ---------*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
//
// ambench — repeatable wall-clock measurements of the optimizer over
// generated workloads, as machine-readable JSON.
//
//   ambench [--out=BENCH_run.json] [--reps=N] [--warmup=N] [--quick]
//           [--filter=SUBSTR] [--list]
//
// Each preset builds its workload once (generation and any pre-
// optimization are setup, never timed), runs `--warmup` untimed
// iterations, then times `--reps` iterations.  Per preset the report
// carries every sample plus a median with outliers rejected by the
// median-absolute-deviation rule (samples further than 3.5 MADs from the
// median are dropped, the median is recomputed over the survivors), so a
// single scheduler hiccup cannot shift the headline number.
//
// The `calib/spin` preset is a fixed pure-integer spin loop: it measures
// the machine, not the optimizer.  Trend comparisons across machines
// divide preset medians by the calibration median
// (tools/bench_check.py --trend), which cancels most of the raw
// CPU-speed difference between the recording and checking hosts.
//
// The emitted document ("schema": "ambench-v1") also fingerprints the
// machine — hostname, CPU model, logical cores, page size, compiler —
// because a wall-clock number without its machine is noise.
//
// Exit codes: 0 ok, 1 usage or I/O error.
//
//===----------------------------------------------------------------------===//

#include "analysis/PaperAnalyses.h"
#include "gen/RandomProgram.h"
#include "interp/Interpreter.h"
#include "ir/FlowGraph.h"
#include "ir/Patterns.h"
#include "ir/Printer.h"
#include "parser/Parser.h"
#include "support/ArgParser.h"
#include "support/History.h"
#include "support/Json.h"
#include "support/Service.h"
#include "support/Telemetry.h"
#include "support/ThreadPool.h"
#include "transform/CopyPropagation.h"
#include "transform/LazyCodeMotion.h"
#include "transform/PartialDeadCodeElim.h"
#include "transform/Pipeline.h"
#include "transform/UniformEmAm.h"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#define AMBENCH_HAVE_UNISTD 1
#endif

using namespace am;

namespace {

uint64_t nowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// One benchmark: a name, a setup step producing state, and the timed
/// body.  The body returns a value derived from its work so the optimizer
/// cannot dead-code it away; the runner folds it into a checksum.
using WorkFacts = std::vector<std::pair<std::string, uint64_t>>;

struct Preset {
  std::string Name;
  /// Builds the workload; runs once, untimed.  Returns static facts
  /// about the workload ("instrs_in": ..., ...), reported verbatim.
  std::function<WorkFacts()> Setup;
  /// The timed body.
  std::function<uint64_t()> Body;
  /// Skipped under --quick (the large scaling points).
  bool Heavy = false;
};

struct Measurement {
  std::string Name;
  std::vector<uint64_t> Samples; // all timed reps, in run order
  uint64_t WallNs = 0;           // median of MAD-surviving samples
  uint64_t MadNs = 0;            // MAD of all samples
  unsigned Kept = 0;             // samples surviving outlier rejection
  WorkFacts Work;
};

uint64_t medianOf(std::vector<uint64_t> V) {
  std::sort(V.begin(), V.end());
  size_t N = V.size();
  return N == 0 ? 0 : (N % 2 ? V[N / 2] : (V[N / 2 - 1] + V[N / 2]) / 2);
}

/// Median + MAD outlier rejection: drop samples more than 3.5 MADs from
/// the median, take the median of the rest.  With MAD == 0 (identical
/// samples) everything survives.
void summarize(Measurement &M) {
  uint64_t Med = medianOf(M.Samples);
  std::vector<uint64_t> Dev;
  Dev.reserve(M.Samples.size());
  for (uint64_t S : M.Samples)
    Dev.push_back(S > Med ? S - Med : Med - S);
  M.MadNs = medianOf(Dev);
  std::vector<uint64_t> Kept;
  for (uint64_t S : M.Samples) {
    uint64_t D = S > Med ? S - Med : Med - S;
    if (M.MadNs == 0 || D <= 7 * M.MadNs / 2) // 3.5 * MAD
      Kept.push_back(S);
  }
  M.Kept = static_cast<unsigned>(Kept.size());
  M.WallNs = medianOf(Kept);
}

//===----------------------------------------------------------------------===//
// Machine fingerprint
//===----------------------------------------------------------------------===//

uint64_t pageSize() {
#ifdef AMBENCH_HAVE_UNISTD
  long P = sysconf(_SC_PAGESIZE);
  if (P > 0)
    return static_cast<uint64_t>(P);
#endif
  return 0;
}

//===----------------------------------------------------------------------===//
// Presets
//===----------------------------------------------------------------------===//

uint64_t instrCount(const FlowGraph &G) { return G.numInstrs(); }

std::vector<Preset> buildPresets() {
  std::vector<Preset> Out;

  {
    Preset P;
    P.Name = "calib/spin";
    P.Setup = [] { return WorkFacts(); };
    P.Body = [] { return hist::calibrationSpin(20'000'000); };
    Out.push_back(std::move(P));
  }

  // Optimize-time scaling points: the uniform algorithm over structured
  // programs of growing size (the bench/bench_scaling axis, but wall
  // clock instead of counters).
  struct ScalePoint {
    const char *Name;
    unsigned TargetStmts;
    unsigned NumVars;
    uint64_t Seed;
    bool Heavy;
  };
  static const ScalePoint Scales[] = {
      {"uniform/structured-64", 64, 6, 11, false},
      {"uniform/structured-256", 256, 10, 12, false},
      {"uniform/structured-1024", 1024, 14, 13, true},
  };
  for (const ScalePoint &SP : Scales) {
    Preset P;
    P.Name = SP.Name;
    P.Heavy = SP.Heavy;
    auto G = std::make_shared<FlowGraph>();
    P.Setup = [G, SP] {
      GenOptions Opts;
      Opts.TargetStmts = SP.TargetStmts;
      Opts.NumVars = SP.NumVars;
      *G = generateStructuredProgram(SP.Seed, Opts);
      return WorkFacts{{"instrs_in", instrCount(*G)},
                       {"blocks_in", G->numBlocks()}};
    };
    P.Body = [G] { return instrCount(runUniformEmAm(*G)); };
    Out.push_back(std::move(P));
  }

  // Solver-scaling points: the Table 1-2 analyses (hoistability,
  // redundancy) over large structured programs with a pattern universe
  // far wider than one machine word — the workload the transposed
  // multi-pattern substrate targets (dfa/MultiPattern.h).  Generation and
  // pattern-table construction happen in Setup; the timed body is full
  // dataflow solves only.
  struct SolvePoint {
    const char *Name;
    unsigned TargetStmts;
    unsigned NumVars;
    unsigned PatternPool;
    uint64_t Seed;
    bool Heavy;
  };
  static const SolvePoint SolveScales[] = {
      {"dfa/solve-10k-blocks", 20'000, 24, 320, 61, false},
      {"dfa/solve-100k-blocks", 200'000, 32, 640, 62, true},
  };
  for (const SolvePoint &SP : SolveScales) {
    Preset P;
    P.Name = SP.Name;
    P.Heavy = SP.Heavy;
    auto G = std::make_shared<FlowGraph>();
    auto Pats = std::make_shared<AssignPatternTable>();
    P.Setup = [G, Pats, SP] {
      GenOptions Opts;
      Opts.TargetStmts = SP.TargetStmts;
      Opts.NumVars = SP.NumVars;
      Opts.PatternPoolSize = SP.PatternPool;
      *G = generateStructuredProgram(SP.Seed, Opts);
      Pats->build(*G);
      return WorkFacts{{"instrs_in", instrCount(*G)},
                       {"blocks_in", G->numBlocks()},
                       {"patterns", Pats->size()}};
    };
    P.Body = [G, Pats] {
      HoistabilityAnalysis H = HoistabilityAnalysis::run(*G, *Pats);
      RedundancyAnalysis R = RedundancyAnalysis::run(*G, *Pats);
      return H.entryHoistable(G->start()).count() * 1024 +
             R.exit(G->start()).count();
    };
    Out.push_back(std::move(P));
  }

  {
    Preset P;
    P.Name = "am/irreducible";
    auto G = std::make_shared<FlowGraph>();
    P.Setup = [G] {
      *G = generateIrreducibleCfg(21);
      return WorkFacts{{"instrs_in", instrCount(*G)},
                       {"blocks_in", G->numBlocks()}};
    };
    P.Body = [G] { return instrCount(runAssignmentMotionOnly(*G)); };
    Out.push_back(std::move(P));
  }

  {
    // The Section 6 EM+CP interleaving as a pipeline: exercises the
    // pipeline plumbing (PassScope bookkeeping included) end to end.
    Preset P;
    P.Name = "pipeline/emcp-structured-256";
    auto G = std::make_shared<FlowGraph>();
    P.Setup = [G] {
      GenOptions Opts;
      Opts.TargetStmts = 256;
      Opts.NumVars = 10;
      *G = generateStructuredProgram(31, Opts);
      return WorkFacts{{"instrs_in", instrCount(*G)},
                       {"blocks_in", G->numBlocks()}};
    };
    P.Body = [G] {
      telemetry::Session S; // a fresh session per rep, like a daemon job
      PipelineOptions Opts;
      Opts.Telemetry = &S;
      PipelineResult R = runPipeline(*G, "lcm,cp,lcm", Opts);
      return instrCount(R.Graph);
    };
    Out.push_back(std::move(P));
  }

  {
    Preset P;
    P.Name = "pde/structured-256";
    auto G = std::make_shared<FlowGraph>();
    P.Setup = [G] {
      GenOptions Opts;
      Opts.TargetStmts = 256;
      Opts.NumVars = 10;
      *G = generateStructuredProgram(41, Opts);
      G->splitCriticalEdges();
      return WorkFacts{{"instrs_in", instrCount(*G)},
                       {"blocks_in", G->numBlocks()}};
    };
    P.Body = [G] {
      FlowGraph W = *G;
      runPartialDeadCodeElim(W);
      return instrCount(W);
    };
    Out.push_back(std::move(P));
  }

  {
    // Dynamic preset: interpret the uniform-optimized program.  The
    // optimization happens in Setup; the timed body is execution only,
    // so the number tracks the *runtime* effect of the transformations.
    Preset P;
    P.Name = "dynamic/interp-uniform";
    auto G = std::make_shared<FlowGraph>();
    P.Setup = [G] {
      GenOptions Opts;
      Opts.TargetStmts = 120;
      Opts.NumVars = 8;
      *G = runUniformEmAm(generateStructuredProgram(51, Opts));
      return WorkFacts{{"instrs_in", instrCount(*G)},
                       {"blocks_in", G->numBlocks()}};
    };
    P.Body = [G] {
      uint64_t Acc = 0;
      Interpreter::Options Opts;
      Opts.MaxSteps = 200000;
      for (uint64_t Run = 0; Run < 6; ++Run) {
        std::unordered_map<std::string, int64_t> In;
        for (unsigned V = 0; V < 8; ++V)
          In["v" + std::to_string(V)] =
              static_cast<int64_t>((Run * 7 + V) % 19) - 9;
        ExecResult R = Interpreter::execute(*G, In, Run, Opts);
        Acc += R.Stats.ExprEvaluations;
      }
      return Acc;
    };
    Out.push_back(std::move(P));
  }

  // The examples corpus as program texts, found by searching upward from
  // the working directory (the build tree in CI); when absent, seeded
  // generated stand-ins of similar size keep the corpus presets present
  // and deterministic, with \p Parsed = 0 making the substitution visible
  // in the document.  Only parseable programs are returned.
  auto exampleProgramTexts = [](uint64_t &Parsed) {
    namespace fs = std::filesystem;
    std::vector<std::string> Texts;
    Parsed = 0;
    std::string Prefix;
    for (int Depth = 0; Depth < 5 && Texts.empty();
         ++Depth, Prefix += "../") {
      std::error_code Ec;
      fs::path Dir = Prefix + "examples/programs";
      if (!fs::is_directory(Dir, Ec))
        continue;
      std::vector<fs::path> Files;
      for (const auto &Entry : fs::directory_iterator(Dir, Ec))
        if (Entry.is_regular_file() && Entry.path().extension() == ".am")
          Files.push_back(Entry.path());
      std::sort(Files.begin(), Files.end());
      for (const fs::path &F : Files) {
        std::ifstream In(F);
        std::ostringstream Buf;
        Buf << In.rdbuf();
        if (parseProgram(Buf.str()).ok())
          Texts.push_back(Buf.str());
      }
      Parsed = Texts.size();
    }
    if (Texts.empty())
      for (uint64_t Seed = 101; Seed <= 105; ++Seed) {
        GenOptions Opts;
        Opts.TargetStmts = 24;
        Texts.push_back(printGraph(generateStructuredProgram(Seed, Opts)));
      }
    return Texts;
  };

  {
    // The ambatch workload as a bench preset: every example program
    // through the guarded uniform pipeline, one fresh telemetry session
    // per program per rep (exactly one ambatch job).  wall_ns / programs
    // is the per-program cost behind the dashboard's throughput tile, so
    // the CI trend gate covers batch throughput too.
    Preset P;
    P.Name = "batch/examples-throughput";
    auto Corpus = std::make_shared<std::vector<FlowGraph>>();
    P.Setup = [Corpus, exampleProgramTexts] {
      uint64_t Parsed = 0, TotalInstrs = 0;
      for (const std::string &Text : exampleProgramTexts(Parsed))
        Corpus->push_back(parseProgram(Text).Graph);
      for (const FlowGraph &G : *Corpus)
        TotalInstrs += instrCount(G);
      return WorkFacts{{"programs", Corpus->size()},
                       {"parsed", Parsed},
                       {"instrs_in", TotalInstrs}};
    };
    P.Body = [Corpus] {
      uint64_t Acc = 0;
      for (const FlowGraph &G : *Corpus) {
        telemetry::Session S;
        PipelineOptions Opts;
        Opts.Guarded = true;
        Opts.Telemetry = &S;
        Acc += instrCount(runPipeline(G, "uniform", Opts).Graph);
      }
      return Acc;
    };
    Out.push_back(std::move(P));
  }

  {
    // The amserved workload as a bench preset: every example program
    // through the in-process request engine as a full amserve-v1 round
    // trip — render the request line, parse it back, execute it (guarded
    // uniform pipeline under a per-request telemetry session and the
    // reused worker context), render and re-parse the response.  The
    // result cache stays at its default capacity and the warmup reps
    // populate it, so the timed number is the daemon's steady-state
    // warm-cache request cost: protocol framing + canonicalization +
    // cache hit, the overhead `amserved` adds over the optimization
    // itself (which batch/examples-throughput times cold).
    Preset P;
    P.Name = "serve/examples-throughput";
    auto Texts = std::make_shared<std::vector<std::string>>();
    auto Eng = std::make_shared<service::Engine>(service::ServiceLimits{});
    P.Setup = [Texts, Eng, exampleProgramTexts] {
      uint64_t Parsed = 0, TotalInstrs = 0;
      *Texts = exampleProgramTexts(Parsed);
      for (const std::string &Text : *Texts)
        TotalInstrs += parseProgram(Text).Graph.numInstrs();
      return WorkFacts{{"programs", Texts->size()},
                       {"parsed", Parsed},
                       {"instrs_in", TotalInstrs}};
    };
    P.Body = [Texts, Eng] {
      uint64_t Acc = 0, Id = 0;
      for (const std::string &Text : *Texts) {
        service::Request Req;
        Req.Id = ++Id;
        Req.Source = Text;
        service::Request Wire;
        if (!service::parseRequest(service::renderRequest(Req), Wire,
                                   nullptr))
          continue;
        service::Response Resp;
        if (!service::parseResponse(
                service::renderResponse(Eng->handle(Wire)), Resp, nullptr))
          continue;
        Acc += Resp.InstrsAfter + Resp.Program.size();
      }
      return Acc;
    };
    Out.push_back(std::move(P));
  }

  return Out;
}

} // namespace

int main(int argc, char **argv) {
  std::string OutPath;
  std::string RepsStr, WarmupStr, Filter, ThreadSpec, HistoryPath;
  bool Quick = false, List = false;

  support::ArgParser Parser(
      "ambench",
      "Times the optimizer over generated workloads and writes one\n"
      "machine-readable JSON document (schema ambench-v1) with per-preset\n"
      "samples, MAD-filtered medians and a machine fingerprint.");
  Parser.option("--out", OutPath, "output file (default: stdout)",
                "BENCH_run.json");
  Parser.option("--reps", RepsStr, "timed repetitions per preset "
                                   "(default: 9)",
                "N");
  Parser.option("--warmup", WarmupStr, "untimed warmup runs per preset "
                                       "(default: 2)",
                "N");
  Parser.flag("--quick", Quick,
              "3 reps, 1 warmup, skip the largest scaling points");
  Parser.option("--filter", Filter, "run only presets containing SUBSTR",
                "SUBSTR");
  Parser.option("--threads", ThreadSpec,
                "worker threads for the dataflow solves (wall-clock only; "
                "results are identical for every value)",
                "N|max");
  Parser.flag("--list", List, "list preset names and exit");
  Parser.option("--history", HistoryPath,
                "append this run to an amhist-v1 run-history file "
                "(for tools/amtrend)",
                "F.jsonl");
  if (!Parser.parse(argc, argv)) {
    std::fprintf(stderr, "ambench: %s\n", Parser.error().c_str());
    return 1;
  }
  if (Parser.helpRequested()) {
    std::fputs(Parser.helpText().c_str(), stdout);
    return 0;
  }

  unsigned Reps = Quick ? 3 : 9;
  unsigned Warmup = Quick ? 1 : 2;
  if (!RepsStr.empty())
    Reps = static_cast<unsigned>(std::strtoul(RepsStr.c_str(), nullptr, 10));
  if (!WarmupStr.empty())
    Warmup =
        static_cast<unsigned>(std::strtoul(WarmupStr.c_str(), nullptr, 10));
  if (Reps == 0) {
    std::fprintf(stderr, "ambench: --reps must be at least 1\n");
    return 1;
  }
  if (!ThreadSpec.empty()) {
    std::string ThreadsErr;
    unsigned N = threads::parseThreadSpec(ThreadSpec, &ThreadsErr);
    if (N == 0) {
      std::fprintf(stderr, "ambench: --threads: %s\n", ThreadsErr.c_str());
      return 1;
    }
    threads::setGlobalThreadCount(N);
  }

  std::vector<Preset> Presets = buildPresets();
  if (List) {
    for (const Preset &P : Presets)
      std::printf("%s%s\n", P.Name.c_str(), P.Heavy ? " (heavy)" : "");
    return 0;
  }

  uint64_t Checksum = 0; // defeats dead-code elimination of the bodies
  std::vector<Measurement> Results;
  uint64_t CalibNs = 0;
  for (Preset &P : Presets) {
    // A history entry without its calibration spin cannot be normalized,
    // so --history keeps calib/spin alive through any --filter.
    bool MustRun = !HistoryPath.empty() && P.Name == "calib/spin";
    if (!Filter.empty() && P.Name.find(Filter) == std::string::npos &&
        !MustRun)
      continue;
    if (Quick && P.Heavy)
      continue;
    WorkFacts Work = P.Setup();
    for (unsigned I = 0; I < Warmup; ++I)
      Checksum ^= P.Body();
    Measurement M;
    M.Name = P.Name;
    M.Work = std::move(Work);
    M.Samples.reserve(Reps);
    for (unsigned I = 0; I < Reps; ++I) {
      uint64_t T0 = nowNs();
      Checksum ^= P.Body();
      M.Samples.push_back(nowNs() - T0);
    }
    summarize(M);
    std::fprintf(stderr, "ambench: %-28s %10.3f ms  (MAD %.3f ms, %u/%zu "
                         "kept)\n",
                 M.Name.c_str(), M.WallNs / 1e6, M.MadNs / 1e6, M.Kept,
                 M.Samples.size());
    if (M.Name == "calib/spin")
      CalibNs = M.WallNs;
    Results.push_back(std::move(M));
  }
  if (Results.empty()) {
    std::fprintf(stderr, "ambench: no preset matched '%s'\n",
                 Filter.c_str());
    return 1;
  }

  std::string Doc;
  json::Writer W(Doc);
  W.beginObject();
  W.key("schema").value("ambench-v1");
  W.key("fingerprint").beginObject();
  W.key("host").value(hist::hostName());
  W.key("cpu").value(hist::cpuModel());
  W.key("threads").value(uint64_t(std::thread::hardware_concurrency()));
  W.key("page_size").value(pageSize());
#ifdef __VERSION__
  W.key("compiler").value(__VERSION__);
#else
  W.key("compiler").value("unknown");
#endif
  // Attribution: without the commit and the solver thread count a
  // longitudinal series cannot name its first bad commit or tell a
  // threading change from a regression.
  W.key("git_sha").value(hist::gitSha());
  W.key("solver_threads").value(uint64_t(threads::globalThreadCount()));
  W.endObject();
  W.key("config").beginObject();
  W.key("reps").value(uint64_t(Reps));
  W.key("warmup").value(uint64_t(Warmup));
  W.key("quick").value(Quick);
  W.key("solver_threads").value(uint64_t(threads::globalThreadCount()));
  W.endObject();
  W.key("calibration").beginObject();
  W.key("spin_ns").value(CalibNs);
  W.endObject();
  W.key("checksum").value(Checksum);
  W.key("results").beginArray();
  for (const Measurement &M : Results) {
    W.beginObject();
    W.key("name").value(M.Name);
    W.key("wall_ns").value(M.WallNs);
    W.key("mad_ns").value(M.MadNs);
    W.key("kept").value(uint64_t(M.Kept));
    W.key("samples").beginArray();
    for (uint64_t S : M.Samples)
      W.value(S);
    W.endArray();
    if (!M.Work.empty()) {
      W.key("work").beginObject();
      for (const auto &KV : M.Work)
        W.key(KV.first).value(KV.second);
      W.endObject();
    }
    W.endObject();
  }
  W.endArray();
  W.endObject();
  Doc += "\n";

  if (!HistoryPath.empty()) {
    hist::HistoryEntry E;
    E.Source = "ambench";
    hist::stampFingerprint(E);
    E.SolverThreads = threads::globalThreadCount();
    E.CalibNs = CalibNs;
    for (const Measurement &M : Results) {
      if (M.Name == "calib/spin")
        continue; // the calibration lands in calib_ns, not as a preset
      hist::PresetStat PS;
      PS.WallNs = M.WallNs;
      PS.MadNs = M.MadNs;
      PS.Work = M.Work;
      std::sort(PS.Work.begin(), PS.Work.end());
      E.Presets.emplace_back(M.Name, std::move(PS));
    }
    std::sort(E.Presets.begin(), E.Presets.end(),
              [](const auto &A, const auto &B) { return A.first < B.first; });
    std::string HistErr;
    if (!hist::appendHistoryFile(HistoryPath, E, &HistErr)) {
      std::fprintf(stderr, "ambench: %s\n", HistErr.c_str());
      return 1;
    }
    std::fprintf(stderr, "ambench: run appended to history %s\n",
                 HistoryPath.c_str());
  }

  if (OutPath.empty() || OutPath == "-") {
    std::fputs(Doc.c_str(), stdout);
    return 0;
  }
  std::ofstream OutFile(OutPath);
  if (!OutFile) {
    std::fprintf(stderr, "ambench: cannot write '%s'\n", OutPath.c_str());
    return 1;
  }
  OutFile << Doc;
  std::fprintf(stderr, "ambench: run written to %s (%zu presets)\n",
               OutPath.c_str(), Results.size());
  return 0;
}
