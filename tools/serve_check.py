#!/usr/bin/env python3
"""End-to-end harness for the amserved optimization daemon.

Each ``--mode`` drives one acceptance scenario of the service failure
envelope:

``roundtrip``
    stdio daemon: every sample program is sent twice; every response must
    be ``ok`` and byte-identical to one-shot ``amopt --guarded`` output
    for the same program and pass spec, the second response must be a
    cache hit with the identical body, and EOF must drain to exit 0.

``socket``
    Unix-socket daemon: the same byte-identity over a socket connection,
    plus protocol robustness on one connection — malformed JSON answers
    ``bad_request``, an unparseable program answers ``bad_request``, an
    over-limit frame answers ``oversized`` — and the connection keeps
    serving after each.  SIGTERM must drain to exit 0.

``faults``
    The service fault matrix: for each injected fault class
    (``svc-worker-throw`` -> error, ``svc-bad-alloc`` ->
    resource_exhausted, ``svc-slow-request`` -> timeout) the faulted
    request must report the envelope status with the *input* program
    intact (instrs_after == instrs_before), and the next request on the
    same daemon must succeed — one poisoned request never takes the
    process down.

``overload``
    Load shedding: with ``--queue=1`` and one wedged in-flight request, a
    concurrent request is shed with ``overloaded`` and a positive
    retry_after_ms; retrying after the hint succeeds.

``sigterm``
    Graceful drain mid-load: SIGTERM lands while requests are in flight;
    every admitted request is answered (or shed), the daemon exits 0, and
    the event log it leaves behind validates via batch_check.py.

``connect``
    The ambatch client: a cold corpus run and a warm (cache-served) rerun
    through ``ambatch --connect`` must produce byte-identical
    deterministic aggregates, and the daemon's event log must validate.

Exit codes: 0 ok, 1 scenario failure, 2 usage/environment.
"""

import argparse
import json
import os
import shutil
import signal
import socket
import subprocess
import sys
import time


def fail(msg):
    print(f"serve_check: FAIL: {msg}", file=sys.stderr)
    return 1


def info(msg):
    print(f"serve_check: {msg}")


def sample_files(samples):
    files = sorted(f for f in os.listdir(samples) if f.endswith(".am"))
    if not files:
        raise SystemExit(f"serve_check: no *.am files in {samples}")
    return [os.path.join(samples, f) for f in files]


def amopt_expected(amopt, path, passes="uniform"):
    p = subprocess.run([amopt, "--guarded", f"--passes={passes}", path],
                       capture_output=True, text=True)
    if p.returncode != 0:
        raise SystemExit(f"serve_check: amopt failed on {path}: {p.stderr}")
    return p.stdout


def request_line(rid, source, passes="uniform", limits=None, guarded=True):
    req = {"id": rid, "source": source, "passes": passes, "guarded": guarded}
    if limits:
        req["limits"] = limits
    return json.dumps(req) + "\n"


class SocketClient:
    """One newline-framed connection to the daemon."""

    def __init__(self, path, timeout=30.0, retries=50):
        last = None
        for _ in range(retries):
            try:
                self.sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                self.sock.settimeout(timeout)
                self.sock.connect(path)
                break
            except OSError as e:
                last = e
                time.sleep(0.1)
        else:
            raise SystemExit(f"serve_check: cannot connect {path}: {last}")
        self.buf = b""

    def send_raw(self, data):
        self.sock.sendall(data)

    def send(self, rid, source, **kw):
        self.send_raw(request_line(rid, source, **kw).encode())

    def recv_line(self):
        while b"\n" not in self.buf:
            chunk = self.sock.recv(65536)
            if not chunk:
                return None
            self.buf += chunk
        line, self.buf = self.buf.split(b"\n", 1)
        return json.loads(line)

    def close(self):
        self.sock.close()


def start_daemon(args, extra, stdio=False, events=None):
    cmd = [args.amserved] + extra
    if events:
        cmd.append(f"--events={events}")
    stdin = subprocess.PIPE if stdio else subprocess.DEVNULL
    stdout = subprocess.PIPE if stdio else subprocess.DEVNULL
    return subprocess.Popen(cmd, stdin=stdin, stdout=stdout,
                            stderr=subprocess.PIPE, text=True)


def wait_exit(proc, what, timeout=60):
    try:
        rc = proc.wait(timeout=timeout)
    except subprocess.TimeoutExpired:
        proc.kill()
        return fail(f"{what}: daemon did not exit within {timeout}s")
    if rc != 0:
        sys.stderr.write(proc.stderr.read() or "")
        return fail(f"{what}: daemon exited {rc}, expected 0")
    return 0


def check_body_identity(resp, expected, what):
    if resp["status"] != "ok":
        return fail(f"{what}: status {resp['status']!r}"
                    f" ({resp.get('error', '')})")
    if resp["program"] != expected:
        return fail(f"{what}: response program differs from amopt output")
    return 0


def mode_roundtrip(args):
    files = sample_files(args.samples)
    expected = {f: amopt_expected(args.amopt, f) for f in files}
    proc = start_daemon(args, ["--threads=2"], stdio=True)
    rid = 0
    lines = []
    out = []
    # Cold pass, then a cache-served warm pass.  The warm pass is sent
    # only after every cold response arrived: with concurrent workers a
    # warm request racing its still-running cold twin is a legitimate
    # cache miss, and this scenario asserts the *hit* path.
    for _ in range(2):
        batch = 0
        for f in files:
            rid += 1
            lines.append((rid, f))
            batch += 1
            proc.stdin.write(request_line(rid, open(f).read()))
        proc.stdin.flush()
        for _ in range(batch):
            out.append(proc.stdout.readline().rstrip("\n"))
    proc.stdin.close()
    tail = proc.stdout.read().splitlines()
    if wait_exit(proc, "roundtrip"):
        return 1
    out += tail
    if len(out) != len(lines):
        return fail(f"roundtrip: {len(out)} responses for {len(lines)}"
                    " requests")
    by_id = {}
    for line in out:
        resp = json.loads(line)
        by_id[resp["id"]] = resp
    n = len(files)
    for i, (rid, f) in enumerate(lines):
        resp = by_id.get(rid)
        if resp is None:
            return fail(f"roundtrip: no response for request {rid}")
        if check_body_identity(resp, expected[f], f"roundtrip {f}"):
            return 1
        warm = i >= n
        if resp["cached"] != warm:
            return fail(f"roundtrip {f}: cached={resp['cached']} on "
                        f"{'warm' if warm else 'cold'} pass")
        if warm:
            cold = by_id[rid - n]
            for key in ("program", "hash", "counters", "remarks",
                        "instrs_after"):
                if resp[key] != cold[key]:
                    return fail(f"roundtrip {f}: cached {key} differs "
                                "from the cold response")
    info(f"roundtrip: {len(lines)} responses, all byte-identical to amopt, "
         "cache hits exact")
    return 0


def mode_socket(args):
    sock = os.path.join(args.workdir, "serve.sock")
    files = sample_files(args.samples)
    proc = start_daemon(
        args, [f"--socket={sock}", "--threads=2", "--max-request-bytes=4096"])
    c = SocketClient(sock)
    rid = 0
    # Byte-identity for every sample that fits the 4 KiB test frame cap.
    for f in files:
        src = open(f).read()
        if len(src) > 3000:
            continue
        rid += 1
        c.send(rid, src)
        resp = c.recv_line()
        if check_body_identity(resp, amopt_expected(args.amopt, f),
                               f"socket {f}"):
            return 1
    # Malformed JSON: bad_request, connection stays usable.
    c.send_raw(b"this is not json\n")
    resp = c.recv_line()
    if resp["status"] != "bad_request":
        return fail(f"socket: malformed frame answered {resp['status']!r}")
    # Unparseable program: bad_request.
    rid += 1
    c.send(rid, "graph { definitely not a program")
    resp = c.recv_line()
    if resp["status"] != "bad_request":
        return fail(f"socket: bad program answered {resp['status']!r}")
    # Oversized frame: discarded with `oversized`, then resynchronized.
    c.send_raw(b'{"id":99,"source":"' + b"x" * 8192 + b'"}\n')
    resp = c.recv_line()
    if resp["status"] != "oversized":
        return fail(f"socket: oversized frame answered {resp['status']!r}")
    # The same connection still serves real work after all three.
    rid += 1
    f = files[0]
    c.send(rid, open(f).read())
    resp = c.recv_line()
    if check_body_identity(resp, amopt_expected(args.amopt, f),
                           "socket post-abuse"):
        return 1
    c.close()
    proc.send_signal(signal.SIGTERM)
    if wait_exit(proc, "socket"):
        return 1
    info("socket: identity, bad_request x2, oversized, recovery, "
         "drain exit 0")
    return 0


def mode_faults(args):
    sock = os.path.join(args.workdir, "serve.sock")
    f = sample_files(args.samples)[0]
    src = open(f).read()
    expected = amopt_expected(args.amopt, f)
    matrix = [
        ("svc-worker-throw", [], "error"),
        ("svc-bad-alloc", [], "resource_exhausted"),
        ("svc-slow-request", ["--deadline-ms=150"], "timeout"),
    ]
    for cls, extra, want in matrix:
        proc = start_daemon(
            args, [f"--socket={sock}", f"--inject={cls}"] + extra)
        c = SocketClient(sock)
        c.send(1, src)
        resp = c.recv_line()
        if resp["status"] != want:
            return fail(f"faults {cls}: answered {resp['status']!r}, "
                        f"expected {want!r}")
        if resp["instrs_after"] != resp["instrs_before"]:
            return fail(f"faults {cls}: contained failure must return the "
                        "input program unchanged")
        if not resp.get("error") and want != "timeout":
            return fail(f"faults {cls}: no error text")
        # The fault fired once; the daemon must still serve correctly.
        c.send(2, src)
        resp = c.recv_line()
        if check_body_identity(resp, expected, f"faults {cls} recovery"):
            return 1
        c.close()
        proc.send_signal(signal.SIGTERM)
        if wait_exit(proc, f"faults {cls}"):
            return 1
        info(f"faults {cls}: -> {want}, input intact, daemon survived")
    return 0


def mode_overload(args):
    sock = os.path.join(args.workdir, "serve.sock")
    f = sample_files(args.samples)[0]
    src = open(f).read()
    # One worker, one admission slot, one wedged request (the injected
    # slow request holds the slot until the 2s deadline or the drain).
    proc = start_daemon(args, [f"--socket={sock}", "--threads=1",
                               "--queue=1", "--deadline-ms=2000",
                               "--inject=svc-slow-request"])
    a = SocketClient(sock)
    a.send(1, src)
    time.sleep(0.3)  # let request 1 occupy the only slot
    b = SocketClient(sock)
    b.send(2, src)
    shed = b.recv_line()
    if shed["status"] != "overloaded":
        return fail(f"overload: concurrent request answered "
                    f"{shed['status']!r}, expected 'overloaded'")
    if shed.get("retry_after_ms", 0) <= 0:
        return fail("overload: overloaded response carries no "
                    "retry_after_ms hint")
    wedged = a.recv_line()  # times out at the 2s deadline
    if wedged["status"] != "timeout":
        return fail(f"overload: wedged request answered "
                    f"{wedged['status']!r}, expected 'timeout'")
    # The slot is free again; the retry the hint asked for now succeeds.
    time.sleep(shed["retry_after_ms"] / 1000.0)
    b.send(3, src)
    retry = b.recv_line()
    if check_body_identity(retry, amopt_expected(args.amopt, f),
                           "overload retry"):
        return 1
    a.close()
    b.close()
    proc.send_signal(signal.SIGTERM)
    if wait_exit(proc, "overload"):
        return 1
    info(f"overload: shed with retry_after_ms={shed['retry_after_ms']}, "
         "wedged request timed out, retry served")
    return 0


def mode_sigterm(args):
    sock = os.path.join(args.workdir, "serve.sock")
    events = os.path.join(args.workdir, "serve_events.jsonl")
    files = sample_files(args.samples)
    proc = start_daemon(args, [f"--socket={sock}", "--threads=2"],
                        events=events)
    c = SocketClient(sock)
    sent = answered = shed = 0
    # Three synchronous rounds: each request is answered before the next,
    # so the daemon is demonstrably serving when the signal lands.
    for _ in range(3):
        for f in files:
            sent += 1
            c.send(sent, open(f).read())
            resp = c.recv_line()
            if resp["status"] != "ok":
                return fail(f"sigterm: pre-drain request answered "
                            f"{resp['status']!r}")
            answered += 1
    # Then a burst with SIGTERM in the middle of it: some frames are in
    # flight, some still unread when the drain begins.  Once the drain
    # closes the connection's read side the kernel may RST it, so sends
    # past that point can fail with EPIPE — those frames were never
    # delivered (the client's retry problem), not an error.
    aborted = False
    for round_ in range(3):
        for f in files:
            try:
                c.send(sent + 1, open(f).read())
                sent += 1
            except OSError:
                aborted = True
                break
        if round_ == 0:
            proc.send_signal(signal.SIGTERM)  # mid-load
        if aborted:
            break
    try:
        c.sock.shutdown(socket.SHUT_WR)
    except OSError:
        pass  # already reset by the drain
    while True:
        try:
            resp = c.recv_line()
        except (OSError, json.JSONDecodeError):
            break
        if resp is None:
            break
        if resp["status"] == "overloaded":
            shed += 1
        elif resp["status"] == "ok":
            answered += 1
        else:
            return fail(f"sigterm: unexpected status {resp['status']!r}")
    c.close()
    if wait_exit(proc, "sigterm"):
        return 1
    if answered == 0:
        return fail("sigterm: no request completed before the drain")
    # Every frame the daemon read got an answer of some kind; frames
    # never read (sent after the reader stopped) are the client's retry
    # problem, exactly like a crashed peer.
    if answered + shed > sent:
        return fail(f"sigterm: {answered + shed} responses for {sent} sent")
    check = subprocess.run(
        [sys.executable,
         os.path.join(os.path.dirname(os.path.abspath(__file__)),
                      "batch_check.py"),
         "--events", events, "--jobs", str(answered)])
    if check.returncode != 0:
        return fail("sigterm: drained event log failed batch_check")
    info(f"sigterm: {answered} served, {shed} shed of {sent} sent; "
         "exit 0; event log validates")
    return 0


def mode_connect(args):
    if not args.ambatch:
        raise SystemExit("serve_check: --mode connect needs --ambatch")
    sock = os.path.join(args.workdir, "serve.sock")
    events = os.path.join(args.workdir, "serve_events.jsonl")
    cold = os.path.join(args.workdir, "agg_cold.json")
    warm = os.path.join(args.workdir, "agg_warm.json")
    proc = start_daemon(args, [f"--socket={sock}", "--threads=4"],
                        events=events)
    SocketClient(sock).close()  # wait for the listener
    n_jobs = len(sample_files(args.samples))
    for agg in (cold, warm):
        p = subprocess.run([args.ambatch, "--quiet", f"--connect={sock}",
                            f"--aggregate={agg}", args.samples])
        if p.returncode != 0:
            return fail(f"connect: ambatch exited {p.returncode}")
    if open(cold, "rb").read() != open(warm, "rb").read():
        return fail("connect: warm (cache-served) aggregate differs from "
                    "the cold one")
    proc.send_signal(signal.SIGTERM)
    if wait_exit(proc, "connect"):
        return 1
    check = subprocess.run(
        [sys.executable,
         os.path.join(os.path.dirname(os.path.abspath(__file__)),
                      "batch_check.py"),
         "--events", events, "--aggregate", cold,
         "--jobs", str(2 * n_jobs)])
    # The aggregate holds one run (n_jobs); the event log holds both.
    if check.returncode == 0:
        return fail("connect: batch_check accepted mismatched job counts")
    check = subprocess.run(
        [sys.executable,
         os.path.join(os.path.dirname(os.path.abspath(__file__)),
                      "batch_check.py"),
         "--events", events, "--jobs", str(2 * n_jobs)])
    if check.returncode != 0:
        return fail("connect: drained event log failed batch_check")
    check = subprocess.run(
        [sys.executable,
         os.path.join(os.path.dirname(os.path.abspath(__file__)),
                      "batch_check.py"),
         "--aggregate", cold, "--jobs", str(n_jobs)])
    if check.returncode != 0:
        return fail("connect: cold aggregate failed batch_check")
    info(f"connect: cold and warm aggregates byte-identical over "
         f"{n_jobs} jobs; event log validates")
    return 0


MODES = {
    "roundtrip": mode_roundtrip,
    "socket": mode_socket,
    "faults": mode_faults,
    "overload": mode_overload,
    "sigterm": mode_sigterm,
    "connect": mode_connect,
}


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--mode", required=True, choices=sorted(MODES))
    ap.add_argument("--amserved", required=True)
    ap.add_argument("--amopt", required=True)
    ap.add_argument("--ambatch")
    ap.add_argument("--samples", required=True)
    ap.add_argument("--workdir", required=True)
    args = ap.parse_args()
    shutil.rmtree(args.workdir, ignore_errors=True)
    os.makedirs(args.workdir, exist_ok=True)
    return MODES[args.mode](args)


if __name__ == "__main__":
    sys.exit(main())
