#!/usr/bin/env python3
"""Unit tests for the pure logic of tools/bench_check.py: run/baseline
schema validation, the merge-style --update document builder, and the
calibration-normalized trend gate.  No amopt/ambench binary is needed;
everything runs on fabricated documents.

Run directly (``python3 tools/bench_check_test.py``) or via ctest
(``bench_check_unit``).
"""

import copy
import importlib.util
import os
import sys
import unittest

_HERE = os.path.dirname(os.path.abspath(__file__))
_SPEC = importlib.util.spec_from_file_location(
    "bench_check", os.path.join(_HERE, "bench_check.py"))
bench_check = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(bench_check)


def make_run(calib_ns=100, presets=None):
    """A minimal valid ambench-v1 document."""
    if presets is None:
        presets = {"uniform/structured-64": 1000}
    results = [{"name": "calib/spin", "wall_ns": calib_ns, "mad_ns": 1,
                "kept": 3, "samples": [calib_ns, calib_ns, calib_ns]}]
    for name, wall in presets.items():
        results.append({"name": name, "wall_ns": wall, "mad_ns": 1,
                        "kept": 3, "samples": [wall, wall, wall]})
    return {
        "schema": "ambench-v1",
        "fingerprint": {"host": "test", "cpu": "fake", "threads": 1},
        "calibration": {"spin_ns": calib_ns},
        "results": results,
    }


class ValidateRunTest(unittest.TestCase):
    def test_valid_run_passes(self):
        self.assertEqual(bench_check.validate_run(make_run()), [])

    def test_wrong_schema_tag(self):
        doc = make_run()
        doc["schema"] = "ambench-v0"
        self.assertTrue(any("schema" in e
                            for e in bench_check.validate_run(doc)))

    def test_missing_calibration(self):
        doc = make_run()
        del doc["calibration"]
        self.assertTrue(any("calibration" in e
                            for e in bench_check.validate_run(doc)))

    def test_malformed_samples(self):
        doc = make_run()
        doc["results"][1]["samples"] = ["fast", "slow"]
        self.assertTrue(any("samples" in e
                            for e in bench_check.validate_run(doc)))

    def test_negative_wall_ns(self):
        doc = make_run()
        doc["results"][1]["wall_ns"] = -5
        self.assertTrue(any("wall_ns" in e
                            for e in bench_check.validate_run(doc)))

    def test_non_object(self):
        self.assertTrue(bench_check.validate_run([1, 2, 3]))
        self.assertTrue(bench_check.validate_run(None))


class ValidateBaselineTest(unittest.TestCase):
    def make_baseline(self):
        return {
            "tolerance": 1.15,
            "presets": {
                "uniform/running_example": {
                    "wall_ns": 123456,
                    "counters": {"dfa.solves": 7},
                },
            },
        }

    def test_valid_baseline(self):
        self.assertEqual(
            bench_check.validate_baseline(self.make_baseline()), [])

    def test_bad_tolerance(self):
        doc = self.make_baseline()
        doc["tolerance"] = 0.5
        self.assertTrue(bench_check.validate_baseline(doc))

    def test_bad_counter_value(self):
        doc = self.make_baseline()
        doc["presets"]["uniform/running_example"]["counters"]["x"] = "many"
        self.assertTrue(bench_check.validate_baseline(doc))

    def test_invalid_ambench_section_reported(self):
        doc = self.make_baseline()
        doc["ambench"] = {"schema": "wrong"}
        self.assertTrue(any(e.startswith("ambench:")
                            for e in bench_check.validate_baseline(doc)))

    def test_valid_history_section(self):
        doc = self.make_baseline()
        doc["history"] = {"file": "bench/BENCH_history.jsonl"}
        self.assertEqual(bench_check.validate_baseline(doc), [])

    def test_history_must_be_object(self):
        doc = self.make_baseline()
        doc["history"] = "bench/BENCH_history.jsonl"
        self.assertTrue(any("history: not an object" in e
                            for e in bench_check.validate_baseline(doc)))

    def test_history_needs_file_pointer(self):
        doc = self.make_baseline()
        doc["history"] = {"_comment": "pointer lost"}
        self.assertTrue(any("history: missing file pointer" in e
                            for e in bench_check.validate_baseline(doc)))


class BuildBaselineDocTest(unittest.TestCase):
    RESULTS = {"uniform/running_example": {"wall_ns": 42,
                                           "counters": {"dfa.solves": 1}}}

    def test_preserves_unknown_sections(self):
        old = {"presets": {}, "tolerance": 1.0,
               "my_custom_section": {"keep": "me"}}
        doc = bench_check.build_baseline_doc(old, self.RESULTS)
        self.assertEqual(doc["my_custom_section"], {"keep": "me"})
        self.assertEqual(doc["presets"], self.RESULTS)
        self.assertEqual(doc["tolerance"], bench_check.TOLERANCE)

    def test_preserves_history_pointer(self):
        old = {"presets": {}, "tolerance": 1.0,
               "history": {"file": "bench/BENCH_history.jsonl"}}
        doc = bench_check.build_baseline_doc(old, self.RESULTS, make_run())
        self.assertEqual(doc["history"],
                         {"file": "bench/BENCH_history.jsonl"})
        self.assertEqual(bench_check.validate_baseline(doc), [])

    def test_refreshes_wall_ns(self):
        old = {"presets": {"uniform/running_example": {
            "wall_ns": 999999, "counters": {"dfa.solves": 1}}}}
        doc = bench_check.build_baseline_doc(old, self.RESULTS)
        self.assertEqual(
            doc["presets"]["uniform/running_example"]["wall_ns"], 42)

    def test_ambench_section_untouched_without_run(self):
        old = {"presets": {}, "ambench": make_run()}
        doc = bench_check.build_baseline_doc(old, self.RESULTS)
        self.assertEqual(doc["ambench"], make_run())

    def test_ambench_section_replaced_with_run(self):
        old = {"presets": {}, "ambench": make_run(calib_ns=1)}
        new_run = make_run(calib_ns=200)
        doc = bench_check.build_baseline_doc(old, self.RESULTS, new_run)
        self.assertEqual(doc["ambench"]["calibration"]["spin_ns"], 200)

    def test_result_validates(self):
        doc = bench_check.build_baseline_doc({}, self.RESULTS, make_run())
        self.assertEqual(bench_check.validate_baseline(doc), [])


class TrendTest(unittest.TestCase):
    BIG = 100_000_000  # 100 ms — far above the noise floor

    def test_identical_runs_pass(self):
        base = make_run(presets={"p": self.BIG})
        failures, _ = bench_check.trend_failures(base,
                                                 copy.deepcopy(base))
        self.assertEqual(failures, [])

    def test_large_regression_fails(self):
        base = make_run(presets={"p": self.BIG})
        slow = make_run(presets={"p": self.BIG * 3})
        failures, _ = bench_check.trend_failures(base, slow, factor=2.0)
        self.assertEqual(len(failures), 1)
        self.assertIn("3.00x", failures[0])

    def test_below_factor_passes(self):
        base = make_run(presets={"p": self.BIG})
        ok = make_run(presets={"p": int(self.BIG * 1.9)})
        failures, _ = bench_check.trend_failures(base, ok, factor=2.0)
        self.assertEqual(failures, [])

    def test_noise_floor_suppresses_tiny_regressions(self):
        # 10x slower but only ~90 us of absolute excess: noise, not rot.
        base = make_run(presets={"p": 10_000})
        slow = make_run(presets={"p": 100_000})
        failures, _ = bench_check.trend_failures(base, slow, factor=2.0)
        self.assertEqual(failures, [])

    def test_calibration_normalizes_machine_speed(self):
        # The checking machine is 3x slower across the board (calibration
        # and preset alike): the normalized ratio is 1.0, no failure.
        base = make_run(calib_ns=100, presets={"p": self.BIG})
        slower_machine = make_run(calib_ns=300,
                                  presets={"p": self.BIG * 3})
        failures, _ = bench_check.trend_failures(base, slower_machine,
                                                 factor=2.0)
        self.assertEqual(failures, [])

    def test_real_regression_on_slower_machine_still_fails(self):
        # 3x slower machine AND a genuine 3x algorithmic slowdown: the
        # normalized ratio is 3.0 and the gate fires.
        base = make_run(calib_ns=100, presets={"p": self.BIG})
        bad = make_run(calib_ns=300, presets={"p": self.BIG * 9})
        failures, _ = bench_check.trend_failures(base, bad, factor=2.0)
        self.assertEqual(len(failures), 1)

    def test_missing_preset_is_note_not_failure(self):
        base = make_run(presets={"p": self.BIG, "q": self.BIG})
        run = make_run(presets={"p": self.BIG})
        failures, notes = bench_check.trend_failures(base, run)
        self.assertEqual(failures, [])
        self.assertTrue(any("q" in n and "missing" in n for n in notes))

    def test_zero_calibration_rejected(self):
        base = make_run(presets={"p": self.BIG})
        base["calibration"]["spin_ns"] = 0
        failures, _ = bench_check.trend_failures(
            base, make_run(presets={"p": self.BIG}))
        self.assertTrue(failures)

    def test_improvement_is_noted(self):
        base = make_run(presets={"p": self.BIG})
        fast = make_run(presets={"p": self.BIG // 2})
        failures, notes = bench_check.trend_failures(base, fast)
        self.assertEqual(failures, [])
        self.assertTrue(any("improved" in n for n in notes))


if __name__ == "__main__":
    unittest.main()
