#!/usr/bin/env python3
"""Well-formedness check for amopt's --report / --facts artifacts.

CI generates a report.html + facts.json pair for every bundled example
program; this script is the lightweight gate over them:

  * the HTML parses and every non-void tag closes in order (a report is a
    single self-contained document — one unbalanced <div> garbles every
    panel after it);
  * the HTML carries each expected panel heading;
  * the facts JSON parses and every remark's instruction ids (instr_id,
    parents, new_ids) resolve to an instruction of some snapshot — a
    dangling id means a remark the report cannot anchor;
  * every fact-table bit string is exactly as wide as its universe, and
    every diff/solve cross-reference points inside the document.

Usage: tools/report_check.py report.html facts.json [more pairs...]
Exit codes: 0 ok, 1 malformed artifact, 2 usage.
"""

import json
import sys
from html.parser import HTMLParser

# https://html.spec.whatwg.org/#void-elements — never closed.
VOID_TAGS = {"area", "base", "br", "col", "embed", "hr", "img", "input",
             "link", "meta", "source", "track", "wbr"}

EXPECTED_PANELS = ["Timeline", "Convergence", "Phase steps",
                   "Dataflow facts", "Dataflow solves", "Input program",
                   "Optimized program"]


class TagBalanceChecker(HTMLParser):
    def __init__(self):
        super().__init__(convert_charrefs=True)
        self.stack = []
        self.errors = []

    def handle_starttag(self, tag, attrs):
        if tag not in VOID_TAGS:
            self.stack.append((tag, self.getpos()))

    def handle_endtag(self, tag):
        if tag in VOID_TAGS:
            return
        if not self.stack:
            self.errors.append(f"line {self.getpos()[0]}: </{tag}> with no "
                               f"open tag")
            return
        open_tag, pos = self.stack.pop()
        if open_tag != tag:
            self.errors.append(
                f"line {self.getpos()[0]}: </{tag}> closes <{open_tag}> "
                f"opened at line {pos[0]}")


def check_html(path):
    errors = []
    with open(path, encoding="utf-8") as fh:
        text = fh.read()
    checker = TagBalanceChecker()
    checker.feed(text)
    checker.close()
    errors += checker.errors
    for tag, pos in checker.stack:
        errors.append(f"<{tag}> opened at line {pos[0]} never closed")
    for panel in EXPECTED_PANELS:
        if panel not in text:
            errors.append(f"missing panel heading '{panel}'")
    if "<script" in text.lower() or "http://" in text or "https://" in text:
        errors.append("report must be self-contained: no scripts or "
                      "external references")
    return errors


def check_facts(path):
    errors = []
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)

    snapshot_ids = set()
    for snap in doc.get("snapshots", []):
        for block in snap["blocks"]:
            for instr in block["instrs"]:
                if instr["id"]:
                    snapshot_ids.add(instr["id"])
    n_snapshots = len(doc.get("snapshots", []))

    for i, remark in enumerate(doc.get("remarks", [])):
        cited = [remark.get("instr_id", 0)]
        cited += remark.get("parents", [])
        cited += remark.get("new_ids", [])
        for rid in cited:
            if rid and rid not in snapshot_ids:
                errors.append(f"remark #{i} ({remark.get('kind')}): id {rid} "
                              f"resolves to no snapshot instruction")

    for t, table in enumerate(doc.get("facts", [])):
        width = len(table["universe"])
        for row in table["blocks"]:
            for key, value in row.items():
                if key == "block":
                    continue
                if len(value) != width:
                    errors.append(
                        f"fact table #{t} ({table['analysis']}): block "
                        f"{row['block']} {key} is {len(value)} bits, "
                        f"universe has {width}")

    for d, diff in enumerate(doc.get("diffs", [])):
        for key in ("from", "to"):
            if not 0 <= diff[key] < n_snapshots:
                errors.append(f"diff #{d}: {key}={diff[key]} is not a "
                              f"snapshot index")
        for change in diff["changes"].get("inserted", []):
            if change["id"] not in snapshot_ids:
                errors.append(f"diff #{d}: inserted id {change['id']} "
                              f"resolves to no snapshot instruction")

    labels = {(s["label"], s.get("round", 0))
              for s in doc.get("snapshots", [])}
    for s, solve in enumerate(doc.get("solves", [])):
        if (solve["label"], solve.get("round", 0)) not in labels:
            errors.append(f"solve #{s}: attributed to unknown phase "
                          f"{solve['label']!r} round {solve.get('round', 0)}")
    return errors


def main(argv):
    if len(argv) < 3 or len(argv) % 2 == 0:
        print(__doc__, file=sys.stderr)
        return 2
    failed = False
    for i in range(1, len(argv), 2):
        html_path, facts_path = argv[i], argv[i + 1]
        for path, checker in ((html_path, check_html),
                              (facts_path, check_facts)):
            try:
                errors = checker(path)
            except (OSError, json.JSONDecodeError, KeyError) as err:
                errors = [f"unreadable or malformed: {err!r}"]
            if errors:
                failed = True
                print(f"report_check: {path}: FAILED", file=sys.stderr)
                for line in errors:
                    print(f"  {line}", file=sys.stderr)
            else:
                print(f"report_check: {path}: ok")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
