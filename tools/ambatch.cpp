//===- tools/ambatch.cpp - Corpus batch runner -----------------*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
//
// ambatch — drive a corpus of programs through guarded pipelines on a
// thread pool, one telemetry session per job, and turn the per-job sinks
// into fleet-level observability (the corpus-scale counterpart of one
// amopt run, and the measurement substrate for ROADMAP item 1's
// optimization-as-a-service direction).
//
//   ambatch [--passes=p1,...] [--unguarded] [--limits=k=v,...]
//           [--threads=N|max] [--gen=N[:seed]] [--gen-stmts=N]
//           [--events=F.jsonl] [--aggregate=F.json] [--report=F.html]
//           [--top=K] [--quiet] [FILE|DIR ...]
//   ambatch --from=run.jsonl [--aggregate=F] [--report=F]
//   ambatch --diff=A.jsonl,B.jsonl [--report=F.html]
//
// Three output layers:
//   --events=F     amevents-v1 JSONL, one record per job (program hash,
//                  wall/phase timings, machine-independent counters,
//                  rollback/limit/remark summaries), appended and flushed
//                  as each job completes — a killed run loses at most the
//                  record being written.
//   --aggregate=F  amagg-v1 JSON: deterministic cross-job counter sums,
//                  min/max/mean and log2 histograms with p50/p95/p99.
//                  Byte-identical for any --threads value and completion
//                  order (jobs merge in index order at the barrier; no
//                  wall times inside).
//   --report=F     self-contained HTML dashboard: per-preset throughput,
//                  phase-time histograms, top-K slowest and rolled-back
//                  programs, the counter aggregates.
//   --diff=A,B     compare two event logs per counter, ranked by relative
//                  magnitude (text on stdout; HTML with --report).
//
// Concurrency model: jobs fan out on a private pool (--threads); the
// per-job dataflow solves run inline on their worker (the process-global
// solver thread count is pinned to 1), so job-level parallelism composes
// with the PR 7 solver instead of deadlocking inside it.  Every job gets
// its own telemetry::Session; nothing observable is shared.
//
// Exit codes mirror amopt: 0 all jobs ok; 1 usage or I/O error; 2 at
// least one job failed to parse or errored; 3 at least one pass rolled
// back; 4 at least one job exhausted a resource budget (2 > 4 > 3 when
// mixed).
//
//===----------------------------------------------------------------------===//

#include "gen/RandomProgram.h"
#include "ir/InstrNumbering.h"
#include "ir/Printer.h"
#include "parser/Parser.h"
#include "report/FleetReport.h"
#include "support/Aggregate.h"
#include "support/ArgParser.h"
#include "support/EventLog.h"
#include "support/History.h"
#include "support/Ipc.h"
#include "support/Profiler.h"
#include "support/Service.h"
#include "support/Remarks.h"
#include "support/Stats.h"
#include "support/Telemetry.h"
#include "support/ThreadPool.h"
#include "transform/Pipeline.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <future>
#include <map>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

using namespace am;
namespace fs = std::filesystem;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: ambatch [--passes=p1,...] [--unguarded] [--limits=k=v,...]\n"
      "               [--threads=N|max] [--gen=N[:seed]] [--gen-stmts=N]\n"
      "               [--events=F.jsonl] [--aggregate=F.json] "
      "[--report=F.html]\n"
      "               [--history=F.jsonl] [--top=K] [--quiet] "
      "[FILE|DIR ...]\n"
      "       ambatch --from=run.jsonl [--aggregate=F] [--report=F] "
      "[--history=F]\n"
      "       ambatch --diff=A.jsonl,B.jsonl [--report=F.html]\n"
      "\n"
      "Runs every corpus program through the (default guarded) pipeline "
      "on a job\n"
      "thread pool, one telemetry session per job, and writes fleet "
      "telemetry:\n"
      "a streaming amevents-v1 JSONL log, a deterministic amagg-v1 "
      "aggregate\n"
      "(byte-identical for any --threads), and an HTML dashboard.  DIR "
      "arguments\n"
      "add every *.am file inside; --gen adds seeded random programs.\n"
      "Exit codes: 0 all ok, 1 usage/io, 2 parse/job error, 3 rollbacks, "
      "4 limits.\n");
  return 1;
}

struct JobSpec {
  uint64_t Index = 0;
  std::string Name;   // file stem or gen:<seed>
  std::string Preset; // directory basename, "file", or "gen"
  std::string Path;   // empty for generated jobs
  uint64_t Seed = 0;
  unsigned GenStmts = 40;
};

struct BatchConfig {
  std::string PassSpec = "uniform";
  bool Guarded = true;
  PipelineLimits Limits;
  std::string LimitsSpec; ///< Raw --limits text, forwarded over --connect.
};

/// Runs one job under its own telemetry session and fills the event
/// record.  \p Diags receives attributable diagnostics ("[name hash]
/// pass rolled back: ...") for the caller to print.
fleet::JobEvent runJob(const JobSpec &Spec, const BatchConfig &Cfg,
                       std::vector<std::string> &Diags) {
  fleet::JobEvent E;
  E.Index = Spec.Index;
  E.Name = Spec.Name;
  E.Preset = Spec.Preset;

  telemetry::Session Job;
  telemetry::SessionScope Scope(Job);
  Job.profiler().setEnabled(true);
  Job.remarks().setEnabled(true);

  auto T0 = std::chrono::steady_clock::now();
  auto Finish = [&] {
    E.WallNs = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - T0)
            .count());
    E.Counters = Job.stats().counterEntries();
    const prof::Profiler &P = Job.profiler();
    for (uint32_t Child : P.node(prof::Profiler::RootId).Children)
      E.Phases.emplace_back(P.node(Child).Name, P.node(Child).WallNs);
    static const remarks::Kind AllKinds[] = {
        remarks::Kind::Decompose,   remarks::Kind::Hoist,
        remarks::Kind::Eliminate,   remarks::Kind::SinkInit,
        remarks::Kind::DeleteInit,  remarks::Kind::Reconstruct,
        remarks::Kind::Blocked,     remarks::Kind::Rollback};
    for (remarks::Kind K : AllKinds)
      if (uint64_t N = Job.remarks().countKind(K))
        E.RemarkKinds.emplace_back(remarks::kindName(K), N);
  };

  FlowGraph G;
  {
    AM_PROF_SCOPE("parse");
    if (Spec.Path.empty()) {
      GenOptions GOpts;
      GOpts.TargetStmts = Spec.GenStmts;
      G = generateStructuredProgram(Spec.Seed, GOpts);
    } else {
      std::ifstream In(Spec.Path);
      std::ostringstream Buf;
      Buf << In.rdbuf();
      if (!In.good() && !In.eof()) {
        E.Status = "error";
        E.Error = "cannot read '" + Spec.Path + "'";
        Diags.push_back("[" + Spec.Name + "] " + E.Error);
        Finish();
        return E;
      }
      ParseResult R = parseProgram(Buf.str());
      if (!R.ok()) {
        E.Status = "error";
        E.Error = R.Error;
        Diags.push_back("[" + Spec.Name + "] parse error: " + R.Error);
        Finish();
        return E;
      }
      G = std::move(R.Graph);
    }
  }
  E.Hash = fleet::hex16(fleet::fnv1a64(printGraph(G)));
  E.BlocksBefore = G.numBlocks();
  E.InstrsBefore = G.numInstrs();
  ensureInstrIds(G);

  PipelineOptions POpts;
  POpts.Guarded = Cfg.Guarded;
  POpts.Limits = Cfg.Limits;
  POpts.Telemetry = &Job;
  // POpts.Threads stays 0: the job inherits the process policy, pinned
  // to 1 worker so per-job solves run inline on this job's thread.
  PipelineResult R = runPipeline(G, Cfg.PassSpec, POpts);

  std::string Tag = "[" + Spec.Name + " " + E.Hash.substr(0, 8) + "]";
  E.Rollbacks = R.RollbackCount;
  E.LimitsHit = R.LimitsExhausted;
  if (!R.ok() && !R.LimitsExhausted) {
    E.Status = "error";
    E.Error = R.Diag.empty() ? R.Error : R.Diag.render();
    Diags.push_back(Tag + " pipeline error: " + E.Error);
  } else if (R.LimitsExhausted) {
    E.Status = "limits";
    Diags.push_back(Tag + " " + R.Diag.render());
  } else if (R.RollbackCount != 0) {
    E.Status = "rolled_back";
    for (const PassRecord &Rec : R.Records)
      if (Rec.Status == PassStatus::RolledBack)
        Diags.push_back(Tag + " pass '" + Rec.Name +
                        "' rolled back: " + Rec.Violation);
  } else {
    E.Status = "ok";
  }
  E.BlocksAfter = R.Graph.numBlocks();
  E.InstrsAfter = R.Graph.numInstrs();
  Finish();
  return E;
}

/// Runs one job against a remote amserved over its Unix socket instead of
/// the in-process pipeline.  Shed (`overloaded`) responses and transient
/// connect/IO failures — the daemon starting up or draining — are retried
/// with deterministic jittered exponential backoff, honoring the server's
/// retry_after_ms hint.  The returned event carries the *server's*
/// counters and remark digest, so events/aggregates/dashboards work
/// unchanged; cached responses replay the original run's counters, which
/// is what makes a warm re-run's aggregate byte-identical to the cold one.
fleet::JobEvent runRemoteJob(const JobSpec &Spec, const BatchConfig &Cfg,
                             const std::string &Socket,
                             std::vector<std::string> &Diags) {
  fleet::JobEvent E;
  E.Index = Spec.Index;
  E.Name = Spec.Name;
  E.Preset = Spec.Preset;

  service::Request Req;
  Req.Id = Spec.Index;
  Req.Passes = Cfg.PassSpec;
  Req.LimitsSpec = Cfg.LimitsSpec;
  Req.Guarded = Cfg.Guarded;
  if (Spec.Path.empty()) {
    GenOptions GOpts;
    GOpts.TargetStmts = Spec.GenStmts;
    Req.Source = printGraph(generateStructuredProgram(Spec.Seed, GOpts));
  } else {
    std::ifstream In(Spec.Path);
    std::ostringstream Buf;
    Buf << In.rdbuf();
    if (!In.good() && !In.eof()) {
      E.Status = "error";
      E.Error = "cannot read '" + Spec.Path + "'";
      Diags.push_back("[" + Spec.Name + "] " + E.Error);
      return E;
    }
    Req.Source = Buf.str();
  }

  const unsigned MaxAttempts = 8;
  std::string LastErr;
  for (unsigned Attempt = 0; Attempt < MaxAttempts; ++Attempt) {
    if (Attempt != 0) {
      uint64_t Delay = service::backoffDelayMs(
          Attempt - 1, /*BaseMs=*/5, /*CapMs=*/250, fleet::fnv1a64(Spec.Name));
      std::this_thread::sleep_for(std::chrono::milliseconds(Delay));
    }
    service::Response Resp;
    bool Got = false;
    int Fd = ipc::connectUnix(Socket, &LastErr);
    if (Fd >= 0) {
      if (ipc::writeLine(Fd, service::renderRequest(Req))) {
        ipc::LineReader Reader(Fd);
        std::string Line;
        if (Reader.readLine(Line) == ipc::LineReader::Status::Line)
          Got = service::parseResponse(Line, Resp, &LastErr);
        else
          LastErr = "connection closed before response";
      } else {
        LastErr = "write failed";
      }
      ::close(Fd);
    }
    if (Got && Resp.Status != "overloaded") {
      E = service::responseEvent(Resp, Spec.Index);
      E.Name = Spec.Name;
      E.Preset = Spec.Preset;
      if (!E.Error.empty())
        Diags.push_back("[" + Spec.Name + "] " + Resp.Status + ": " + E.Error);
      return E;
    }
    if (Got && Resp.RetryAfterMs != 0) {
      LastErr = "overloaded";
      std::this_thread::sleep_for(
          std::chrono::milliseconds(Resp.RetryAfterMs));
    }
  }
  E.Status = "error";
  E.Error = "service unavailable after " + std::to_string(MaxAttempts) +
            " attempts: " + LastErr;
  Diags.push_back("[" + Spec.Name + "] " + E.Error);
  return E;
}

fleet::Aggregate aggregateInOrder(const std::vector<fleet::JobEvent> &Events) {
  // Merge in job-index order at the barrier — never completion order —
  // so the aggregate JSON is byte-identical for any thread count.
  fleet::Aggregate Agg;
  for (const fleet::JobEvent &E : Events)
    Agg.addJob(E);
  return Agg;
}

bool writeAggregateFile(const std::string &Path, const fleet::Aggregate &Agg) {
  std::ofstream Out(Path, std::ios::binary);
  if (!Out)
    return false;
  Agg.writeJson(Out);
  Out << '\n';
  return Out.good();
}

bool writeTextFile(const std::string &Path, const std::string &Text) {
  std::ofstream Out(Path, std::ios::binary);
  if (!Out)
    return false;
  Out << Text;
  return Out.good();
}

uint64_t medianU64(std::vector<uint64_t> V) {
  std::sort(V.begin(), V.end());
  size_t N = V.size();
  return N == 0 ? 0 : (N % 2 ? V[N / 2] : (V[N / 2 - 1] + V[N / 2]) / 2);
}

/// This run as one amhist-v1 entry: per-corpus-group wall sums
/// ("batch/<preset>", plus "batch/all" across the corpus) with the MAD
/// of the per-job walls, the aggregate's machine-independent counter
/// sums, a digest of the serialized aggregate, and a freshly measured
/// calibration spin (ambatch runs no bench harness, so it measures the
/// machine here, ~0.1s).  \p SolverThreads is the run's job-level
/// worker count (0 when unknown, e.g. --from a foreign log).
hist::HistoryEntry makeHistoryEntry(const std::vector<fleet::JobEvent> &Events,
                                    const fleet::Aggregate &Agg,
                                    uint64_t SolverThreads) {
  hist::HistoryEntry E;
  E.Source = "ambatch";
  hist::stampFingerprint(E);
  E.SolverThreads = SolverThreads;
  E.CalibNs = hist::measureCalibrationSpin();

  std::map<std::string, std::vector<uint64_t>> Walls; // name-sorted
  for (const fleet::JobEvent &Ev : Events) {
    Walls[Ev.Preset].push_back(Ev.WallNs);
    Walls["all"].push_back(Ev.WallNs);
  }
  for (const auto &[Group, W] : Walls) {
    hist::PresetStat PS;
    for (uint64_t Ns : W)
      PS.WallNs += Ns;
    uint64_t Med = medianU64(W);
    std::vector<uint64_t> Dev;
    Dev.reserve(W.size());
    for (uint64_t Ns : W)
      Dev.push_back(Ns > Med ? Ns - Med : Med - Ns);
    PS.MadNs = medianU64(std::move(Dev));
    PS.Work.emplace_back("jobs", W.size());
    E.Presets.emplace_back("batch/" + Group, std::move(PS));
  }

  for (const auto &[Name, M] : Agg.counters())
    E.Counters.emplace_back(Name, M.Sum);

  std::ostringstream AggJson;
  Agg.writeJson(AggJson);
  E.HasAggregate = true;
  E.AggJobs = Agg.jobs();
  E.AggHash = fleet::hex16(fleet::fnv1a64(AggJson.str()));
  E.AggSkippedLines = Agg.skippedLines();
  for (const auto &[S, N] : Agg.statuses())
    E.AggStatuses.emplace_back(S, N);
  return E;
}

bool appendHistoryOrComplain(const std::string &Path,
                             const hist::HistoryEntry &E, bool Quiet) {
  std::string Err;
  if (!hist::appendHistoryFile(Path, E, &Err)) {
    std::fprintf(stderr, "ambatch: %s\n", Err.c_str());
    return false;
  }
  if (!Quiet)
    std::fprintf(stderr, "ambatch: run appended to history %s\n",
                 Path.c_str());
  return true;
}

int runDiff(const std::string &DiffSpec, const std::string &ReportPath,
            bool Quiet) {
  size_t Comma = DiffSpec.find(',');
  if (Comma == std::string::npos || Comma == 0 ||
      Comma + 1 == DiffSpec.size()) {
    std::fprintf(stderr, "ambatch: --diff needs two files: A.jsonl,B.jsonl\n");
    return usage();
  }
  std::string PathA = DiffSpec.substr(0, Comma);
  std::string PathB = DiffSpec.substr(Comma + 1);
  fleet::EventLogFile A, B;
  std::string Err;
  if (!fleet::readEventLogFile(PathA, A, &Err) ||
      !fleet::readEventLogFile(PathB, B, &Err)) {
    std::fprintf(stderr, "ambatch: %s\n", Err.c_str());
    return 1;
  }
  if (!Quiet)
    for (const fleet::EventLogFile *L : {&A, &B})
      for (const std::string &W : L->Warnings)
        std::fprintf(stderr, "ambatch: warning: %s\n", W.c_str());

  fleet::Aggregate AggA, AggB;
  for (const fleet::JobEvent &E : A.Events)
    AggA.addJob(E);
  for (const fleet::JobEvent &E : B.Events)
    AggB.addJob(E);
  std::vector<fleet::DiffRow> Rows = fleet::diffAggregates(AggA, AggB);

  std::printf("# corpus diff: A=%s (%zu jobs)  B=%s (%zu jobs)\n",
              PathA.c_str(), A.Events.size(), PathB.c_str(), B.Events.size());
  std::printf("%-28s %14s %14s %12s %9s\n", "counter", "mean A", "mean B",
              "delta", "rel");
  for (const fleet::DiffRow &R : Rows) {
    if (R.Delta == 0.0)
      continue;
    char Rel[24];
    if (std::abs(R.RelDelta) >= 1e9)
      std::snprintf(Rel, sizeof(Rel), "%s", R.RelDelta > 0 ? "new" : "gone");
    else
      std::snprintf(Rel, sizeof(Rel), "%+.1f%%", R.RelDelta * 100.0);
    std::printf("%-28s %14.2f %14.2f %+12.2f %9s\n", R.Counter.c_str(),
                R.MeanA, R.MeanB, R.Delta, Rel);
  }

  if (!ReportPath.empty()) {
    if (!writeTextFile(ReportPath,
                       report::renderFleetDiff(A, B, PathA, PathB))) {
      std::fprintf(stderr, "ambatch: cannot write report '%s'\n",
                   ReportPath.c_str());
      return 1;
    }
    if (!Quiet)
      std::fprintf(stderr, "ambatch: diff report written to %s\n",
                   ReportPath.c_str());
  }
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  std::string Passes = "uniform";
  std::string LimitsSpec, ThreadSpec, GenSpec, EventsPath, AggregatePath;
  std::string ReportPath, FromPath, DiffSpec, TopSpec, GenStmtsSpec;
  std::string HistoryPath, ConnectPath;
  bool Unguarded = false, Quiet = false;

  support::ArgParser Parser(
      "ambatch",
      "Drives a corpus of programs (files, directories of *.am, seeded\n"
      "random programs) through guarded pipelines on a thread pool and\n"
      "emits fleet telemetry: streaming events, deterministic aggregates,\n"
      "an HTML dashboard, and corpus-to-corpus diffs.");
  Parser.option("--passes", Passes, "pass pipeline for every job", "p1,p2,...");
  Parser.flag("--unguarded", Unguarded,
              "run the plain pipeline (default is guarded with rollback)");
  Parser.option("--limits", LimitsSpec, "per-job resource budgets",
                "am-rounds=N,growth=F,sweeps=N,wall-ms=F");
  Parser.option("--threads", ThreadSpec,
                "job-level worker threads (events/aggregate identical for "
                "every value)",
                "N|max");
  Parser.option("--gen", GenSpec, "add N seeded random programs", "N[:seed]");
  Parser.option("--gen-stmts", GenStmtsSpec,
                "target statements per generated program (default 40)", "N");
  Parser.option("--events", EventsPath,
                "write amevents-v1 JSONL, one flushed record per job",
                "F.jsonl");
  Parser.option("--aggregate", AggregatePath,
                "write the deterministic amagg-v1 cross-job aggregate",
                "F.json");
  Parser.option("--report", ReportPath,
                "write the self-contained HTML fleet dashboard", "F.html");
  Parser.option("--history", HistoryPath,
                "append this run to an amhist-v1 run-history file "
                "(for tools/amtrend)",
                "F.jsonl");
  Parser.option("--connect", ConnectPath,
                "send jobs to a running amserved over its Unix socket "
                "(retrying shed requests with jittered backoff)",
                "SOCK");
  Parser.option("--from", FromPath,
                "load an existing event log instead of running jobs",
                "run.jsonl");
  Parser.option("--diff", DiffSpec,
                "compare two event logs per counter, ranked by magnitude",
                "A.jsonl,B.jsonl");
  Parser.option("--top", TopSpec, "rows in the top-K dashboard tables", "K");
  Parser.flag("--quiet", Quiet,
              "suppress informational stderr (diagnostics and errors stay)");
  if (!Parser.parse(argc, argv)) {
    std::fprintf(stderr, "ambatch: %s\n", Parser.error().c_str());
    return usage();
  }
  if (Parser.helpRequested()) {
    std::fputs(Parser.helpText().c_str(), stdout);
    return 0;
  }
  // A server that disappears mid-write must surface as a retryable EPIPE
  // on the --connect path, not kill the whole batch.
  ipc::ignoreSigpipe();

  unsigned TopK = 10;
  if (!TopSpec.empty()) {
    char *End = nullptr;
    long V = std::strtol(TopSpec.c_str(), &End, 10);
    if (!End || *End != '\0' || V <= 0) {
      std::fprintf(stderr, "ambatch: bad --top '%s'\n", TopSpec.c_str());
      return usage();
    }
    TopK = static_cast<unsigned>(V);
  }

  if (!DiffSpec.empty())
    return runDiff(DiffSpec, ReportPath, Quiet);

  if (!FromPath.empty()) {
    fleet::EventLogFile Log;
    std::string Err;
    if (!fleet::readEventLogFile(FromPath, Log, &Err)) {
      std::fprintf(stderr, "ambatch: %s\n", Err.c_str());
      return 1;
    }
    for (const std::string &W : Log.Warnings)
      std::fprintf(stderr, "ambatch: warning: %s\n", W.c_str());
    fleet::Aggregate Agg = aggregateInOrder(Log.Events);
    // Data loss is a fact about this corpus: skipped event-log lines
    // ride in the aggregate so checks and dashboards see them.
    Agg.noteSkippedLines(Log.SkippedLines);
    if (!AggregatePath.empty() && !writeAggregateFile(AggregatePath, Agg)) {
      std::fprintf(stderr, "ambatch: cannot write aggregate '%s'\n",
                   AggregatePath.c_str());
      return 1;
    }
    if (!ReportPath.empty()) {
      report::FleetReportOptions ROpts;
      ROpts.Title = "ambatch · " + Log.Passes;
      ROpts.TopK = TopK;
      if (!writeTextFile(ReportPath,
                         report::renderFleetDashboard(Log, Agg, ROpts))) {
        std::fprintf(stderr, "ambatch: cannot write report '%s'\n",
                     ReportPath.c_str());
        return 1;
      }
    }
    if (!HistoryPath.empty() &&
        !appendHistoryOrComplain(HistoryPath,
                                 makeHistoryEntry(Log.Events, Agg,
                                                  /*SolverThreads=*/0),
                                 Quiet))
      return 1;
    if (!Quiet)
      std::fprintf(stderr, "ambatch: loaded %zu events from %s\n",
                   Log.Events.size(), FromPath.c_str());
    return 0;
  }

  BatchConfig Cfg;
  Cfg.PassSpec = Passes;
  Cfg.Guarded = !Unguarded;
  {
    diag::Expected<std::vector<std::string>> Spec = parsePassSpec(Passes);
    if (!Spec.ok()) {
      std::fprintf(stderr, "ambatch: %s\n", Spec.diagnostic().render().c_str());
      return usage();
    }
  }
  if (!LimitsSpec.empty()) {
    diag::Expected<PipelineLimits> L = parseLimitsSpec(LimitsSpec);
    if (!L.ok()) {
      std::fprintf(stderr, "ambatch: %s\n", L.diagnostic().render().c_str());
      return usage();
    }
    Cfg.Limits = *L;
    Cfg.LimitsSpec = LimitsSpec;
  }

  unsigned JobThreads = 1;
  if (!ThreadSpec.empty()) {
    std::string ThreadsErr;
    JobThreads = threads::parseThreadSpec(ThreadSpec, &ThreadsErr);
    if (JobThreads == 0) {
      std::fprintf(stderr, "ambatch: --threads: %s\n", ThreadsErr.c_str());
      return usage();
    }
  }

  // Assemble the corpus: positional files/dirs first (name-sorted per
  // directory), then generated programs.  Index order IS the aggregate
  // merge order, so it must not depend on anything but the command line.
  std::vector<JobSpec> Specs;
  for (const std::string &Arg : Parser.positional()) {
    std::error_code Ec;
    if (fs::is_directory(Arg, Ec)) {
      std::vector<fs::path> Files;
      for (const auto &Entry : fs::directory_iterator(Arg, Ec))
        if (Entry.is_regular_file() && Entry.path().extension() == ".am")
          Files.push_back(Entry.path());
      std::sort(Files.begin(), Files.end());
      std::string Preset = fs::path(Arg).filename().string();
      if (Preset.empty())
        Preset = fs::path(Arg).parent_path().filename().string();
      for (const fs::path &F : Files) {
        JobSpec S;
        S.Name = F.stem().string();
        S.Preset = Preset;
        S.Path = F.string();
        Specs.push_back(std::move(S));
      }
    } else if (fs::is_regular_file(Arg, Ec)) {
      JobSpec S;
      S.Name = fs::path(Arg).stem().string();
      S.Preset = "file";
      S.Path = Arg;
      Specs.push_back(std::move(S));
    } else {
      std::fprintf(stderr, "ambatch: no such file or directory: '%s'\n",
                   Arg.c_str());
      return 1;
    }
  }
  if (!GenSpec.empty()) {
    unsigned GenStmts = 40;
    if (!GenStmtsSpec.empty()) {
      char *End = nullptr;
      long V = std::strtol(GenStmtsSpec.c_str(), &End, 10);
      if (!End || *End != '\0' || V <= 0) {
        std::fprintf(stderr, "ambatch: bad --gen-stmts '%s'\n",
                     GenStmtsSpec.c_str());
        return usage();
      }
      GenStmts = static_cast<unsigned>(V);
    }
    uint64_t Count = 0, Seed0 = 1;
    size_t Colon = GenSpec.find(':');
    try {
      Count = std::stoull(GenSpec.substr(0, Colon));
      if (Colon != std::string::npos)
        Seed0 = std::stoull(GenSpec.substr(Colon + 1));
    } catch (...) {
      Count = 0;
    }
    if (Count == 0) {
      std::fprintf(stderr, "ambatch: bad --gen '%s'\n", GenSpec.c_str());
      return usage();
    }
    for (uint64_t I = 0; I < Count; ++I) {
      JobSpec S;
      S.Seed = Seed0 + I;
      S.Name = "gen:" + std::to_string(S.Seed);
      S.Preset = "gen";
      S.GenStmts = GenStmts;
      Specs.push_back(std::move(S));
    }
  }
  if (Specs.empty()) {
    std::fprintf(stderr, "ambatch: empty corpus (no FILE/DIR and no --gen)\n");
    return usage();
  }
  for (uint64_t I = 0; I < Specs.size(); ++I)
    Specs[I].Index = I;

  // Job-level parallelism only: per-job solves run inline on their
  // worker.  A job submitting into the same pool it runs on would
  // deadlock, and runPipeline with Threads!=0 would mutate this global —
  // which is why jobs inherit the pinned policy instead.
  threads::setGlobalThreadCount(1);

  std::optional<std::ofstream> EventsOut;
  std::optional<fleet::EventLogWriter> Writer;
  if (!EventsPath.empty()) {
    EventsOut.emplace(EventsPath, std::ios::binary);
    if (!*EventsOut) {
      std::fprintf(stderr, "ambatch: cannot write events '%s'\n",
                   EventsPath.c_str());
      return 1;
    }
    Writer.emplace(*EventsOut);
    Writer->writeHeader(Cfg.PassSpec, Specs.size());
  }

  if (!Quiet)
    std::fprintf(stderr,
                 "ambatch: %zu jobs, %u thread(s), passes=%s%s\n",
                 Specs.size(), JobThreads, Cfg.PassSpec.c_str(),
                 Cfg.Guarded ? " (guarded)" : "");

  std::vector<fleet::JobEvent> Events(Specs.size());
  std::mutex DiagMu;
  auto Batch0 = std::chrono::steady_clock::now();
  {
    threads::ThreadPool Pool(JobThreads);
    std::vector<std::future<void>> Futures;
    Futures.reserve(Specs.size());
    for (const JobSpec &Spec : Specs)
      Futures.push_back(Pool.submit([&Spec, &Cfg, &Events, &Writer, &DiagMu,
                                     &ConnectPath, Quiet] {
        std::vector<std::string> Diags;
        try {
          Events[Spec.Index] =
              ConnectPath.empty()
                  ? runJob(Spec, Cfg, Diags)
                  : runRemoteJob(Spec, Cfg, ConnectPath, Diags);
        } catch (const std::exception &Ex) {
          Events[Spec.Index].Index = Spec.Index;
          Events[Spec.Index].Name = Spec.Name;
          Events[Spec.Index].Preset = Spec.Preset;
          Events[Spec.Index].Status = "error";
          Events[Spec.Index].Error = Ex.what();
          Diags.push_back("[" + Spec.Name + "] exception: " + Ex.what());
        }
        if (Writer)
          Writer->append(Events[Spec.Index]); // streaming: completion order
        if (!Quiet && !Diags.empty()) {
          std::lock_guard<std::mutex> Lock(DiagMu);
          for (const std::string &D : Diags)
            std::fprintf(stderr, "ambatch: %s\n", D.c_str());
        }
      }));
    for (std::future<void> &F : Futures)
      F.get();
  }
  uint64_t RunWallNs = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - Batch0)
          .count());

  fleet::Aggregate Agg = aggregateInOrder(Events);

  uint64_t NumOk = 0, NumRolledBack = 0, NumLimits = 0, NumError = 0;
  for (const fleet::JobEvent &E : Events) {
    if (E.Status == "ok")
      ++NumOk;
    else if (E.Status == "rolled_back")
      ++NumRolledBack;
    else if (E.Status == "limits" || E.Status == "timeout")
      ++NumLimits; // a remote deadline is a budget stop, not a job error
    else
      ++NumError;
  }
  if (!Quiet) {
    double Secs = static_cast<double>(RunWallNs) / 1e9;
    std::fprintf(stderr,
                 "ambatch: %zu jobs in %.2fs (%.1f programs/s wall-clock, "
                 "%u thread(s)): %llu ok, %llu rolled back, %llu limits, "
                 "%llu errors\n",
                 Events.size(), Secs,
                 Secs > 0 ? static_cast<double>(Events.size()) / Secs : 0.0,
                 JobThreads, (unsigned long long)NumOk,
                 (unsigned long long)NumRolledBack,
                 (unsigned long long)NumLimits, (unsigned long long)NumError);
  }

  if (!AggregatePath.empty() && !writeAggregateFile(AggregatePath, Agg)) {
    std::fprintf(stderr, "ambatch: cannot write aggregate '%s'\n",
                 AggregatePath.c_str());
    return 1;
  }
  if (!ReportPath.empty()) {
    fleet::EventLogFile Log;
    Log.Schema = "amevents-v1";
    Log.Passes = Cfg.PassSpec;
    Log.JobsDeclared = Events.size();
    Log.Events = Events;
    report::FleetReportOptions ROpts;
    ROpts.Title = "ambatch · " + Cfg.PassSpec;
    ROpts.TopK = TopK;
    ROpts.RunWallNs = RunWallNs;
    ROpts.Threads = JobThreads;
    if (!writeTextFile(ReportPath,
                       report::renderFleetDashboard(Log, Agg, ROpts))) {
      std::fprintf(stderr, "ambatch: cannot write report '%s'\n",
                   ReportPath.c_str());
      return 1;
    }
    if (!Quiet)
      std::fprintf(stderr, "ambatch: dashboard written to %s\n",
                   ReportPath.c_str());
  }
  if (!HistoryPath.empty() &&
      !appendHistoryOrComplain(HistoryPath,
                               makeHistoryEntry(Events, Agg, JobThreads),
                               Quiet))
    return 1;

  if (NumError)
    return 2;
  if (NumLimits)
    return 4;
  if (NumRolledBack)
    return 3;
  return 0;
}
