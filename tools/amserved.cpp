//===- tools/amserved.cpp - Long-lived optimization daemon -----*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
//
// amserved — the optimization-as-a-service daemon (ROADMAP item 1): a
// long-lived process accepting amserve-v1 requests (one JSON object per
// line; see support/Service.h) over stdio or a Unix-domain socket and
// answering each with the guarded pipeline's result.
//
//   amserved [--socket=PATH] [--threads=N|max] [--queue=N] [--cache=N]
//            [--deadline-ms=F] [--max-request-bytes=N]
//            [--events=F.jsonl] [--history=F.jsonl]
//            [--inject=class[:site]] [--verbose]
//
// Without --socket the daemon serves its stdin/stdout (one process per
// client — what the stdio tests and shell pipes use).  With --socket it
// accepts any number of concurrent connections.
//
// The failure envelope (the tentpole contract):
//   * per-request deadlines — --deadline-ms folds into the pipeline wall
//     budget and a watchdog cancels requests that blow it inside a pass;
//     the response is `timeout` with the canonical *input* attached;
//   * crash containment — a worker exception answers `error`, allocation
//     failure answers `resource_exhausted`; the daemon keeps serving;
//   * bounded admission — at most --queue requests in flight; beyond
//     that, `overloaded` with a retry_after_ms hint (load shedding);
//   * graceful drain — SIGTERM/SIGINT stop admission, let in-flight
//     requests finish or time out, flush the event log, roll the run
//     into --history, and exit 0.
//
// Responses are byte-identical to one-shot `amopt` output for the same
// program and pass spec, cache hit or miss, at any --threads.
//
//===----------------------------------------------------------------------===//

#include "support/ArgParser.h"
#include "support/Aggregate.h"
#include "support/History.h"
#include "support/Ipc.h"
#include "support/Service.h"
#include "support/ThreadPool.h"
#include "verify/FaultInjector.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include <signal.h>
#include <unistd.h>

using namespace am;

namespace {

// The signal handler writes one byte here; the watcher thread does the
// actual drain (requestDrain touches non-async-signal-safe state).
int SignalPipe[2] = {-1, -1};

void onTermSignal(int) {
  char C = 't';
  [[maybe_unused]] ssize_t N = ::write(SignalPipe[1], &C, 1);
}

void installDrainSignals() {
  struct sigaction SA;
  std::memset(&SA, 0, sizeof(SA));
  SA.sa_handler = onTermSignal;
  sigemptyset(&SA.sa_mask);
  SA.sa_flags = SA_RESTART;
  sigaction(SIGTERM, &SA, nullptr);
  sigaction(SIGINT, &SA, nullptr);
}

/// The drain-time history rollup: the served requests as one amhist-v1
/// entry (Source "amserved", preset "serve/all"), so longitudinal trend
/// tooling sees service runs next to batch runs.
bool appendHistory(const std::string &Path,
                   const std::vector<fleet::JobEvent> &Events,
                   unsigned Workers, std::string *Err) {
  fleet::Aggregate Agg;
  for (const fleet::JobEvent &E : Events)
    Agg.addJob(E);

  hist::HistoryEntry H;
  H.Source = "amserved";
  hist::stampFingerprint(H);
  H.SolverThreads = Workers;
  H.CalibNs = hist::measureCalibrationSpin();
  hist::PresetStat PS;
  for (const fleet::JobEvent &E : Events)
    PS.WallNs += E.WallNs;
  PS.Work.emplace_back("requests", Events.size());
  H.Presets.emplace_back("serve/all", std::move(PS));
  for (const auto &[Name, M] : Agg.counters())
    H.Counters.emplace_back(Name, M.Sum);
  return hist::appendHistoryFile(Path, H, Err);
}

} // namespace

int main(int argc, char **argv) {
  std::string SocketPath, ThreadSpec, QueueSpec, CacheSpec, DeadlineSpec;
  std::string MaxBytesSpec, EventsPath, HistoryPath, InjectSpec;
  bool Verbose = false;

  support::ArgParser Parser(
      "amserved",
      "Long-lived optimization daemon: accepts amserve-v1 requests (one\n"
      "JSON object per line) over stdio or a Unix-domain socket, runs each\n"
      "through the guarded pipeline on a worker pool under per-request\n"
      "deadlines, and answers with the optimized program — byte-identical\n"
      "to one-shot amopt output.  SIGTERM/SIGINT drain gracefully.");
  Parser.option("--socket", SocketPath,
                "serve a Unix-domain socket instead of stdio", "PATH");
  Parser.option("--threads", ThreadSpec, "request worker threads", "N|max");
  Parser.option("--queue", QueueSpec,
                "admission bound: requests in flight before shedding "
                "(default 64, 0 = unbounded)",
                "N");
  Parser.option("--cache", CacheSpec,
                "LRU result cache entries (default 256, 0 disables)", "N");
  Parser.option("--deadline-ms", DeadlineSpec,
                "per-request wall deadline (default 10000, 0 = none)", "F");
  Parser.option("--max-request-bytes", MaxBytesSpec,
                "largest accepted request frame (default 4194304)", "N");
  Parser.option("--events", EventsPath,
                "amevents-v1 JSONL log, one flushed record per request",
                "F.jsonl");
  Parser.option("--history", HistoryPath,
                "on drain, append the run to an amhist-v1 history file",
                "F.jsonl");
  Parser.option("--inject", InjectSpec,
                "arm one deterministic service fault (tests)",
                "class[:site]");
  Parser.flag("--verbose", Verbose, "per-request lines on stderr");
  if (!Parser.parse(argc, argv)) {
    std::fprintf(stderr, "amserved: %s\n", Parser.error().c_str());
    return 1;
  }
  if (Parser.helpRequested()) {
    std::fputs(Parser.helpText().c_str(), stdout);
    return 0;
  }
  if (!Parser.positional().empty()) {
    std::fprintf(stderr, "amserved: unexpected argument '%s'\n",
                 Parser.positional().front().c_str());
    return 1;
  }

  service::ServerOptions Opts;
  Opts.SocketPath = SocketPath;
  Opts.EventsPath = EventsPath;
  Opts.Verbose = Verbose;

  auto ParseU64 = [](const std::string &Spec, const char *Flag,
                     uint64_t &Out) {
    char *End = nullptr;
    unsigned long long V = std::strtoull(Spec.c_str(), &End, 10);
    if (!End || *End != '\0') {
      std::fprintf(stderr, "amserved: bad %s '%s'\n", Flag, Spec.c_str());
      return false;
    }
    Out = V;
    return true;
  };
  uint64_t U = 0;
  if (!QueueSpec.empty()) {
    if (!ParseU64(QueueSpec, "--queue", U))
      return 1;
    Opts.Limits.QueueCapacity = static_cast<unsigned>(U);
  }
  if (!CacheSpec.empty()) {
    if (!ParseU64(CacheSpec, "--cache", U))
      return 1;
    Opts.Limits.CacheEntries = static_cast<unsigned>(U);
  }
  if (!MaxBytesSpec.empty()) {
    if (!ParseU64(MaxBytesSpec, "--max-request-bytes", U))
      return 1;
    Opts.Limits.MaxRequestBytes = U;
  }
  if (!DeadlineSpec.empty()) {
    char *End = nullptr;
    double V = std::strtod(DeadlineSpec.c_str(), &End);
    if (!End || *End != '\0' || V < 0.0) {
      std::fprintf(stderr, "amserved: bad --deadline-ms '%s'\n",
                   DeadlineSpec.c_str());
      return 1;
    }
    Opts.Limits.DeadlineMs = V;
  }
  Opts.Workers = 1;
  if (!ThreadSpec.empty()) {
    std::string Err;
    Opts.Workers = threads::parseThreadSpec(ThreadSpec, &Err);
    if (Opts.Workers == 0) {
      std::fprintf(stderr, "amserved: --threads: %s\n", Err.c_str());
      return 1;
    }
  }

  fault::FaultInjector Injector;
  if (!InjectSpec.empty()) {
    diag::Expected<std::pair<fault::FaultClass, unsigned>> Spec =
        fault::parseFaultSpec(InjectSpec);
    if (!Spec.ok()) {
      std::fprintf(stderr, "amserved: %s\n",
                   Spec.diagnostic().render().c_str());
      return 1;
    }
    Injector.arm(Spec->first, Spec->second);
    Injector.install();
  }

  ipc::ignoreSigpipe();
  if (::pipe(SignalPipe) != 0) {
    std::fprintf(stderr, "amserved: cannot create signal pipe\n");
    return 1;
  }
  installDrainSignals();

  service::Server Server(Opts);
  std::thread SignalWatcher([&Server] {
    char C;
    if (ipc::readRetry(SignalPipe[0], &C, 1) > 0)
      Server.requestDrain();
  });

  if (Verbose)
    std::fprintf(stderr,
                 "amserved: serving %s, %u worker(s), queue=%u, cache=%u, "
                 "deadline=%.0fms\n",
                 SocketPath.empty() ? "stdio" : SocketPath.c_str(),
                 Opts.Workers, Opts.Limits.QueueCapacity,
                 Opts.Limits.CacheEntries, Opts.Limits.DeadlineMs);

  int Rc = Server.run();

  // run() returned: either drain was requested or the input stream ended
  // (stdio EOF).  Unblock the watcher if no signal ever arrived.
  {
    char C = 'q';
    [[maybe_unused]] ssize_t N = ::write(SignalPipe[1], &C, 1);
  }
  SignalWatcher.join();
  ::close(SignalPipe[0]);
  ::close(SignalPipe[1]);

  std::vector<fleet::JobEvent> Events = Server.takeEvents();
  if (!HistoryPath.empty() && !Events.empty()) {
    std::string Err;
    if (!appendHistory(HistoryPath, Events, Opts.Workers, &Err))
      std::fprintf(stderr, "amserved: %s\n", Err.c_str());
    else if (Verbose)
      std::fprintf(stderr, "amserved: run appended to history %s\n",
                   HistoryPath.c_str());
  }

  service::Server::Stats S = Server.stats();
  if (Verbose)
    std::fprintf(stderr,
                 "amserved: drained: %llu accepted, %llu completed, "
                 "%llu shed, %llu oversized, %llu bad frames "
                 "(cache %llu hits / %llu misses)\n",
                 (unsigned long long)S.Accepted,
                 (unsigned long long)S.Completed, (unsigned long long)S.Shed,
                 (unsigned long long)S.Oversized,
                 (unsigned long long)S.BadFrames,
                 (unsigned long long)Server.engine().cache().hits(),
                 (unsigned long long)Server.engine().cache().misses());
  return Rc;
}
