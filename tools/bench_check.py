#!/usr/bin/env python3
"""Benchmark gates: counter regressions and wall-clock trends.

Counter gate (the default): runs ``amopt --stats=json`` for every preset
in ``bench/BENCH_baseline.json`` and compares the solver/transform
counters against the committed baseline.  Counters are machine-independent
(they count work items, never time), so any growth beyond the tolerance is
a real algorithmic regression — more solves, more sweeps, more words
touched — and fails the check.  Wall time is recorded per preset for
context but never enforced there: CI machines are too noisy for raw
wall-clock gates.

Trend gate (``--trend RUN.json``): compares an ``ambench`` run (see
tools/ambench.cpp, schema ambench-v1) against the ``ambench`` section of
the baseline.  Both documents carry a ``calib/spin`` measurement — a fixed
integer spin loop that times the *machine* — so the gate compares
calibration-normalized ratios, which cancels most of the CPU-speed
difference between the recording and checking hosts.  A preset fails only
when its normalized time exceeds ``--factor`` (default 2.0) times the
baseline AND the absolute excess is above a small noise floor; the gate is
a tripwire for order-of-magnitude rot, not a microbenchmark.

Usage:
  tools/bench_check.py --amopt build/tools/amopt             # counter check
  tools/bench_check.py --amopt build/tools/amopt --update \\
      [--run BENCH_run.json | --ambench build/tools/ambench] # refresh
  tools/bench_check.py --trend BENCH_run.json [--factor 2.0] # trend gate
  tools/bench_check.py --validate-run BENCH_run.json         # schema only

``--update`` refreshes the preset counters *and* their wall_ns context,
validates the result against the baseline schema before writing, and
preserves unknown top-level sections of the existing baseline (only the
keys this tool owns are rewritten).  With ``--run`` it also refreshes the
``ambench`` section from an existing run file; with ``--ambench`` it
invokes the given binary (``--quick``) to produce one.

Exit codes: 0 ok, 1 regression or preset failure, 2 usage/environment.
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time

# Machine-independent counters gated by the check.  Timers and the
# "which solver strategy ran" breakdown counters are excluded on purpose:
# the former are time, the latter may legitimately shift between equally
# good strategies.
GATED_COUNTERS = [
    "dfa.solves",
    "dfa.sweeps",
    "dfa.blocks_processed",
    "dfa.words_touched",
    "dfa.transfers_recomputed",
    "am.rounds",
    "am.hoist_rounds",
    "am.eliminated",
    "flush.inits_deleted",
    "flush.inits_sunk",
]

# Regression tolerance: a gated counter may grow by at most this factor
# over the baseline before the check fails.
TOLERANCE = 1.15

# Trend gate: a calibration-normalized preset may slow down by at most
# this factor, and only slowdowns whose absolute excess tops the noise
# floor count (sub-millisecond presets jitter far more than 2x).
TREND_FACTOR = 2.0
TREND_NOISE_FLOOR_NS = 5_000_000  # 5 ms

# preset name -> amopt arguments (before the input file)
PRESETS = {
    "uniform/running_example": ["examples/programs/running_example.am"],
    "uniform/filter_kernel": ["examples/programs/filter_kernel.am"],
    "uniform/blocked_motion": ["examples/programs/blocked_motion.am"],
    "uniform/matrix_sum": ["examples/programs/matrix_sum.am"],
    "am/irreducible": ["--pass=am", "examples/programs/irreducible.am"],
    "pde/running_example": ["--pass=pde",
                            "examples/programs/running_example.am"],
}


def run_preset(amopt, args, repo_root):
    """Runs one preset; returns (counters dict, wall_ns)."""
    cmd = [amopt, "--stats=json"] + args
    start = time.monotonic_ns()
    proc = subprocess.run(cmd, cwd=repo_root, capture_output=True, text=True)
    wall_ns = time.monotonic_ns() - start
    if proc.returncode != 0:
        raise RuntimeError(
            f"{' '.join(cmd)} exited {proc.returncode}:\n{proc.stderr}")
    stats = json.loads(proc.stderr)
    counters = stats["registry"]["counters"]
    return {k: counters.get(k, 0) for k in GATED_COUNTERS}, wall_ns


# ---------------------------------------------------------------------------
# Schema validation (pure functions; unit-tested by bench_check_test.py)
# ---------------------------------------------------------------------------

def _is_count(v):
    return isinstance(v, int) and not isinstance(v, bool) and v >= 0


def validate_run(doc):
    """Validates an ambench-v1 run document.  Returns a list of problems
    (empty = valid)."""
    errors = []
    if not isinstance(doc, dict):
        return ["run document is not a JSON object"]
    if doc.get("schema") != "ambench-v1":
        errors.append(f"schema is {doc.get('schema')!r}, want 'ambench-v1'")
    if not isinstance(doc.get("fingerprint"), dict):
        errors.append("missing fingerprint object")
    calib = doc.get("calibration")
    if not isinstance(calib, dict) or not _is_count(calib.get("spin_ns")):
        errors.append("calibration.spin_ns missing or not a count")
    results = doc.get("results")
    if not isinstance(results, list) or not results:
        errors.append("results missing or empty")
        return errors
    for i, entry in enumerate(results):
        where = f"results[{i}]"
        if not isinstance(entry, dict):
            errors.append(f"{where}: not an object")
            continue
        if not isinstance(entry.get("name"), str) or not entry.get("name"):
            errors.append(f"{where}: missing name")
        for key in ("wall_ns", "mad_ns", "kept"):
            if not _is_count(entry.get(key)):
                errors.append(f"{where}: {key} missing or not a count")
        samples = entry.get("samples")
        if (not isinstance(samples, list) or not samples
                or not all(_is_count(s) for s in samples)):
            errors.append(f"{where}: samples missing or malformed")
    return errors


def validate_baseline(doc):
    """Validates a baseline document (counter presets plus the optional
    ambench section).  Returns a list of problems (empty = valid)."""
    errors = []
    if not isinstance(doc, dict):
        return ["baseline is not a JSON object"]
    tol = doc.get("tolerance")
    if not isinstance(tol, (int, float)) or isinstance(tol, bool) or tol < 1:
        errors.append("tolerance missing or < 1")
    presets = doc.get("presets")
    if not isinstance(presets, dict) or not presets:
        errors.append("presets missing or empty")
    else:
        for name, entry in presets.items():
            if not isinstance(entry, dict):
                errors.append(f"presets[{name}]: not an object")
                continue
            if not _is_count(entry.get("wall_ns")):
                errors.append(f"presets[{name}]: wall_ns missing")
            counters = entry.get("counters")
            if not isinstance(counters, dict):
                errors.append(f"presets[{name}]: counters missing")
            elif not all(_is_count(v) for v in counters.values()):
                errors.append(f"presets[{name}]: non-count counter value")
    if "ambench" in doc:
        errors += [f"ambench: {e}" for e in validate_run(doc["ambench"])]
    if "history" in doc:
        hist = doc["history"]
        if not isinstance(hist, dict):
            errors.append("history: not an object")
        elif (not isinstance(hist.get("file"), str)
              or not hist.get("file")):
            errors.append("history: missing file pointer")
    return errors


def build_baseline_doc(old_doc, results, ambench_run=None):
    """Builds the refreshed baseline: rewrites the keys this tool owns
    (_comment, tolerance, presets, and ambench when a run is supplied)
    and preserves every other top-level section of the old baseline —
    in particular the ``history`` pointer (where ambench/ambatch
    --history append and tools/amtrend reads), which this tool never
    owns and must survive every --update."""
    doc = dict(old_doc) if isinstance(old_doc, dict) else {}
    doc["_comment"] = (
        "Machine-independent solver/transform counters per preset; "
        "tools/bench_check.py fails CI when a gated counter grows >15% "
        "over this baseline.  wall_ns is context only (never enforced "
        "directly); the 'ambench' section feeds the calibration-"
        "normalized --trend gate.  Regenerate with tools/bench_check.py "
        "--amopt <amopt> --update [--ambench <ambench>].")
    doc["tolerance"] = TOLERANCE
    doc["presets"] = results
    if ambench_run is not None:
        doc["ambench"] = ambench_run
    return doc


# ---------------------------------------------------------------------------
# Trend gate
# ---------------------------------------------------------------------------

def trend_failures(baseline_run, new_run, factor=TREND_FACTOR,
                   noise_floor_ns=TREND_NOISE_FLOOR_NS):
    """Compares two ambench runs.  Returns (failures, notes): failures is
    a list of regression messages, notes a list of informational lines
    (presets missing on one side, improvements)."""
    failures, notes = [], []
    base_calib = baseline_run["calibration"]["spin_ns"]
    new_calib = new_run["calibration"]["spin_ns"]
    if base_calib == 0 or new_calib == 0:
        return ["calibration spin_ns is zero; cannot normalize"], notes
    base_by_name = {r["name"]: r for r in baseline_run["results"]}
    new_by_name = {r["name"]: r for r in new_run["results"]}
    for name, base in base_by_name.items():
        if name == "calib/spin":
            continue
        new = new_by_name.get(name)
        if new is None:
            notes.append(f"{name}: missing from this run (not compared)")
            continue
        # Normalized time: preset wall clock in units of the machine's own
        # spin time.  The ratio of normalized times is machine-neutral.
        base_norm = base["wall_ns"] / base_calib
        new_norm = new["wall_ns"] / new_calib
        if base_norm == 0:
            notes.append(f"{name}: zero baseline (not compared)")
            continue
        ratio = new_norm / base_norm
        # The absolute excess is judged on the *checking* machine's clock,
        # rescaled from the baseline via the calibration ratio.
        scaled_base_ns = base["wall_ns"] * (new_calib / base_calib)
        excess_ns = new["wall_ns"] - scaled_base_ns
        if ratio > factor and excess_ns > noise_floor_ns:
            failures.append(
                f"{name}: {ratio:.2f}x slower than baseline "
                f"(normalized; limit {factor:.2f}x, "
                f"excess {excess_ns / 1e6:.1f} ms)")
        elif ratio < 1.0:
            notes.append(f"{name}: improved ({ratio:.2f}x)")
        else:
            notes.append(f"{name}: {ratio:.2f}x (within {factor:.2f}x)")
    for name in new_by_name:
        if name != "calib/spin" and name not in base_by_name:
            notes.append(f"{name}: no baseline entry (run --update)")
    return failures, notes


# ---------------------------------------------------------------------------
# Modes
# ---------------------------------------------------------------------------

def load_json(path, what):
    try:
        with open(path) as fh:
            return json.load(fh)
    except (OSError, json.JSONDecodeError) as err:
        print(f"bench_check: cannot read {what} {path}: {err}",
              file=sys.stderr)
        return None


def mode_validate_run(path):
    doc = load_json(path, "run")
    if doc is None:
        return 2
    errors = validate_run(doc)
    if errors:
        print("bench_check: run document invalid:", file=sys.stderr)
        for e in errors:
            print(f"  {e}", file=sys.stderr)
        return 1
    print(f"bench_check: {path} is a valid ambench-v1 run "
          f"({len(doc['results'])} results)")
    return 0


def mode_trend(run_path, baseline_path, factor):
    run = load_json(run_path, "run")
    baseline = load_json(baseline_path, "baseline")
    if run is None or baseline is None:
        return 2
    errors = validate_run(run)
    if errors:
        print("bench_check: run document invalid:", file=sys.stderr)
        for e in errors:
            print(f"  {e}", file=sys.stderr)
        return 2
    base_run = baseline.get("ambench")
    if base_run is None:
        print("bench_check: baseline has no ambench section; regenerate "
              "with --update --ambench <ambench> (trend gate skipped)",
              file=sys.stderr)
        return 2
    errors = validate_run(base_run)
    if errors:
        print("bench_check: baseline ambench section invalid:",
              file=sys.stderr)
        for e in errors:
            print(f"  {e}", file=sys.stderr)
        return 2
    failures, notes = trend_failures(base_run, run, factor)
    for note in notes:
        print(f"bench_check: trend: {note}")
    if failures:
        print("bench_check: TREND FAILED:", file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        return 1
    print(f"bench_check: trend OK (factor {factor:.2f}x, "
          f"noise floor {TREND_NOISE_FLOOR_NS / 1e6:.0f} ms)")
    return 0


def collect_ambench_run(args, repo_root):
    """Obtains the ambench run for --update: --run file wins, else the
    --ambench binary is invoked, else None (section left untouched)."""
    if args.run:
        return load_json(args.run, "run")
    if not args.ambench:
        return False  # sentinel: nothing requested
    ambench = os.path.abspath(args.ambench)
    if not os.path.exists(ambench):
        print(f"bench_check: no such binary: {ambench}", file=sys.stderr)
        return None
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        tmp_path = tmp.name
    try:
        proc = subprocess.run([ambench, "--quick", f"--out={tmp_path}"],
                              cwd=repo_root, capture_output=True, text=True)
        if proc.returncode != 0:
            print(f"bench_check: ambench failed:\n{proc.stderr}",
                  file=sys.stderr)
            return None
        return load_json(tmp_path, "run")
    finally:
        os.unlink(tmp_path)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--amopt", help="path to the amopt binary")
    parser.add_argument("--baseline", default=None,
                        help="baseline file (default: bench/"
                             "BENCH_baseline.json in the repo)")
    parser.add_argument("--update", action="store_true",
                        help="refresh the baseline from this run")
    parser.add_argument("--trend", metavar="RUN.json",
                        help="compare an ambench run against the "
                             "baseline's ambench section")
    parser.add_argument("--factor", type=float, default=TREND_FACTOR,
                        help="trend slowdown limit (default: %(default)s)")
    parser.add_argument("--validate-run", metavar="RUN.json",
                        help="validate an ambench run document and exit")
    parser.add_argument("--run", metavar="RUN.json",
                        help="with --update: take the ambench section "
                             "from this run file")
    parser.add_argument("--ambench",
                        help="with --update: invoke this ambench binary "
                             "to refresh the ambench section")
    args = parser.parse_args()

    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    if args.baseline is None:
        baseline_path = os.path.join(repo_root, "bench/BENCH_baseline.json")
    else:
        baseline_path = os.path.abspath(args.baseline)

    if args.validate_run:
        return mode_validate_run(args.validate_run)
    if args.trend:
        return mode_trend(args.trend, baseline_path, args.factor)

    if not args.amopt:
        print("bench_check: --amopt is required for the counter check",
              file=sys.stderr)
        return 2
    amopt = os.path.abspath(args.amopt)
    if not os.path.exists(amopt):
        print(f"bench_check: no such binary: {amopt}", file=sys.stderr)
        return 2

    results = {}
    for name, preset_args in PRESETS.items():
        try:
            counters, wall_ns = run_preset(amopt, preset_args, repo_root)
        except (RuntimeError, json.JSONDecodeError, KeyError) as err:
            print(f"bench_check: preset {name} failed: {err}",
                  file=sys.stderr)
            return 1
        results[name] = {"wall_ns": wall_ns, "counters": counters}

    if args.update:
        old_doc = {}
        if os.path.exists(baseline_path):
            old_doc = load_json(baseline_path, "baseline")
            if old_doc is None:
                return 2
        ambench_run = collect_ambench_run(args, repo_root)
        if ambench_run is None:
            return 2
        doc = build_baseline_doc(
            old_doc, results,
            ambench_run if ambench_run is not False else None)
        errors = validate_baseline(doc)
        if errors:
            print("bench_check: refusing to write invalid baseline:",
                  file=sys.stderr)
            for e in errors:
                print(f"  {e}", file=sys.stderr)
            return 2
        with open(baseline_path, "w") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"bench_check: baseline written to {baseline_path} "
              f"({len(results)} presets"
              + (", ambench refreshed" if ambench_run not in (None, False)
                 else "") + ")")
        return 0

    baseline = load_json(baseline_path, "baseline")
    if baseline is None:
        return 2
    errors = validate_baseline(baseline)
    if errors:
        print("bench_check: baseline invalid:", file=sys.stderr)
        for e in errors:
            print(f"  {e}", file=sys.stderr)
        return 2
    tolerance = baseline.get("tolerance", TOLERANCE)

    failures = []
    for name, entry in baseline["presets"].items():
        if name not in results:
            failures.append(f"{name}: preset missing from this run")
            continue
        new = results[name]["counters"]
        for counter, old_value in entry["counters"].items():
            new_value = new.get(counter, 0)
            limit = old_value * tolerance
            marker = ""
            if old_value and new_value > limit:
                failures.append(
                    f"{name}: {counter} regressed {old_value} -> {new_value} "
                    f"(limit {limit:.0f})")
                marker = "  <-- REGRESSION"
            elif old_value == 0 and new_value > 0:
                failures.append(
                    f"{name}: {counter} regressed 0 -> {new_value}")
                marker = "  <-- REGRESSION"
            elif new_value < old_value:
                marker = "  (improved)"
            if marker:
                print(f"  {name}: {counter} {old_value} -> {new_value}"
                      f"{marker}")
        wall = results[name]["wall_ns"]
        print(f"bench_check: {name}: wall {wall / 1e6:.1f} ms "
              f"(baseline {entry['wall_ns'] / 1e6:.1f} ms, not enforced)")

    for name in results:
        if name not in baseline["presets"]:
            print(f"bench_check: note: preset {name} has no baseline entry "
                  f"(run --update)")

    if failures:
        print("bench_check: FAILED:", file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        return 1
    print(f"bench_check: OK ({len(baseline['presets'])} presets within "
          f"{(tolerance - 1) * 100:.0f}% of baseline)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
