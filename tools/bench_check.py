#!/usr/bin/env python3
"""Counter-regression gate over the bundled example programs.

Runs ``amopt --stats=json`` for every preset in ``bench/BENCH_baseline.json``
and compares the solver/transform counters against the committed baseline.
Counters are machine-independent (they count work items, never time), so
any growth beyond the tolerance is a real algorithmic regression — more
solves, more sweeps, more words touched — and fails the check.  Wall time
is recorded per preset for context but never enforced: CI machines are too
noisy for wall-clock gates.

Usage:
  tools/bench_check.py --amopt build/tools/amopt            # check
  tools/bench_check.py --amopt build/tools/amopt --update   # rewrite baseline

Exit codes: 0 ok, 1 regression or preset failure, 2 usage/environment.
"""

import argparse
import json
import os
import subprocess
import sys
import time

# Machine-independent counters gated by the check.  Timers and the
# "which solver strategy ran" breakdown counters are excluded on purpose:
# the former are time, the latter may legitimately shift between equally
# good strategies.
GATED_COUNTERS = [
    "dfa.solves",
    "dfa.sweeps",
    "dfa.blocks_processed",
    "dfa.words_touched",
    "dfa.transfers_recomputed",
    "am.rounds",
    "am.hoist_rounds",
    "am.eliminated",
    "flush.inits_deleted",
    "flush.inits_sunk",
]

# Regression tolerance: a gated counter may grow by at most this factor
# over the baseline before the check fails.
TOLERANCE = 1.15

# preset name -> amopt arguments (before the input file)
PRESETS = {
    "uniform/running_example": ["examples/programs/running_example.am"],
    "uniform/filter_kernel": ["examples/programs/filter_kernel.am"],
    "uniform/blocked_motion": ["examples/programs/blocked_motion.am"],
    "uniform/matrix_sum": ["examples/programs/matrix_sum.am"],
    "am/irreducible": ["--pass=am", "examples/programs/irreducible.am"],
    "pde/running_example": ["--pass=pde",
                            "examples/programs/running_example.am"],
}


def run_preset(amopt, args, repo_root):
    """Runs one preset; returns (counters dict, wall_ns)."""
    cmd = [amopt, "--stats=json"] + args
    start = time.monotonic_ns()
    proc = subprocess.run(cmd, cwd=repo_root, capture_output=True, text=True)
    wall_ns = time.monotonic_ns() - start
    if proc.returncode != 0:
        raise RuntimeError(
            f"{' '.join(cmd)} exited {proc.returncode}:\n{proc.stderr}")
    stats = json.loads(proc.stderr)
    counters = stats["registry"]["counters"]
    return {k: counters.get(k, 0) for k in GATED_COUNTERS}, wall_ns


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--amopt", required=True,
                        help="path to the amopt binary")
    parser.add_argument("--baseline", default="bench/BENCH_baseline.json",
                        help="baseline file (default: %(default)s)")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from this run")
    args = parser.parse_args()

    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    amopt = os.path.abspath(args.amopt)
    if not os.path.exists(amopt):
        print(f"bench_check: no such binary: {amopt}", file=sys.stderr)
        return 2
    baseline_path = os.path.join(repo_root, args.baseline)

    results = {}
    for name, preset_args in PRESETS.items():
        try:
            counters, wall_ns = run_preset(amopt, preset_args, repo_root)
        except (RuntimeError, json.JSONDecodeError, KeyError) as err:
            print(f"bench_check: preset {name} failed: {err}",
                  file=sys.stderr)
            return 1
        results[name] = {"wall_ns": wall_ns, "counters": counters}

    if args.update:
        doc = {
            "_comment": "Machine-independent solver/transform counters per "
                        "preset; tools/bench_check.py fails CI when a gated "
                        "counter grows >15% over this baseline.  wall_ns is "
                        "context only (never enforced).  Regenerate with "
                        "tools/bench_check.py --amopt <amopt> --update.",
            "tolerance": TOLERANCE,
            "presets": results,
        }
        with open(baseline_path, "w") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"bench_check: baseline written to {args.baseline} "
              f"({len(results)} presets)")
        return 0

    try:
        with open(baseline_path) as fh:
            baseline = json.load(fh)
    except OSError as err:
        print(f"bench_check: cannot read baseline: {err}", file=sys.stderr)
        return 2
    tolerance = baseline.get("tolerance", TOLERANCE)

    failures = []
    for name, entry in baseline["presets"].items():
        if name not in results:
            failures.append(f"{name}: preset missing from this run")
            continue
        new = results[name]["counters"]
        for counter, old_value in entry["counters"].items():
            new_value = new.get(counter, 0)
            limit = old_value * tolerance
            marker = ""
            if old_value and new_value > limit:
                failures.append(
                    f"{name}: {counter} regressed {old_value} -> {new_value} "
                    f"(limit {limit:.0f})")
                marker = "  <-- REGRESSION"
            elif old_value == 0 and new_value > 0:
                failures.append(
                    f"{name}: {counter} regressed 0 -> {new_value}")
                marker = "  <-- REGRESSION"
            elif new_value < old_value:
                marker = "  (improved)"
            if marker:
                print(f"  {name}: {counter} {old_value} -> {new_value}"
                      f"{marker}")
        wall = results[name]["wall_ns"]
        print(f"bench_check: {name}: wall {wall / 1e6:.1f} ms "
              f"(baseline {entry['wall_ns'] / 1e6:.1f} ms, not enforced)")

    for name in results:
        if name not in baseline["presets"]:
            print(f"bench_check: note: preset {name} has no baseline entry "
                  f"(run --update)")

    if failures:
        print("bench_check: FAILED:", file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        return 1
    print(f"bench_check: OK ({len(baseline['presets'])} presets within "
          f"{(tolerance - 1) * 100:.0f}% of baseline)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
