//===- tools/amopt.cpp - Command-line optimizer driver ---------*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
//
// amopt — optimize a program written in either front-end syntax, with
// full observability into what the algorithm did.
//
//   amopt [--pass=uniform|am|lcm|bcm|restricted|cp|pde]
//         [--passes=p1,p2,...] [--dot] [--stats[=json]] [--trace=out.json]
//         [--verify] [--annotate=redundancy|hoist|flush|live] [FILE]
//
// Reads FILE (or stdin) containing a `program { ... }` or `graph { ... }`
// source, runs the selected pass (default: uniform EM & AM), and prints
// the optimized program — or Graphviz DOT with --dot.  With no FILE and a
// terminal on stdin, optimizes the paper's running example as a demo.
//
// Observability:
//   --stats        human-readable per-pass log + registry dump on stderr
//   --stats=json   one JSON object on stderr: {"input": .., "output": ..,
//                  "passes": [PassRecord...], "registry": {counters,
//                  gauges, timers}}
//   --trace=F      write a Chrome trace_event JSON file; open it in
//                  about:tracing or https://ui.perfetto.dev — one span
//                  per pass, nested spans per dataflow solve, instant
//                  events per AM fixpoint round.
//
//===----------------------------------------------------------------------===//

#include "analysis/Annotate.h"
#include "figures/PaperFigures.h"
#include "interp/Equivalence.h"
#include "ir/Printer.h"
#include "parser/Parser.h"
#include "support/Json.h"
#include "support/Stats.h"
#include "support/Trace.h"
#include "transform/BusyCodeMotion.h"
#include "transform/CopyPropagation.h"
#include "transform/LazyCodeMotion.h"
#include "transform/PartialDeadCodeElim.h"
#include "transform/Pipeline.h"
#include "transform/RestrictedAssignmentMotion.h"
#include "transform/UniformEmAm.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include <unistd.h>

using namespace am;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: amopt [--pass=uniform|am|lcm|bcm|restricted|cp|pde] "
               "[--passes=p1,p2,...] [--dot]\n"
               "             [--stats[=json]] [--trace=out.json] [--verify]\n"
               "             [--annotate=redundancy|hoist|flush|live] [FILE]\n"
               "\n"
               "Optimizes a `program { ... }` or `graph { ... }` source "
               "(FILE or stdin).\n"
               "--annotate prints analysis facts over the *input* instead "
               "of transforming.\n"
               "--stats reports per-pass IR deltas, timings and solver "
               "counters on stderr\n"
               "(machine-readable with --stats=json).  --trace writes "
               "Chrome trace_event JSON\n"
               "for about:tracing / Perfetto.\n");
  return 2;
}

} // namespace

int main(int argc, char **argv) {
  std::string Pass = "uniform";
  std::string Passes;
  std::string Annotation;
  std::string TracePath;
  bool EmitDot = false, EmitStats = false, StatsJson = false, Verify = false;
  std::string File;

  for (int Idx = 1; Idx < argc; ++Idx) {
    std::string Arg = argv[Idx];
    if (Arg.rfind("--passes=", 0) == 0)
      Passes = Arg.substr(9);
    else if (Arg.rfind("--pass=", 0) == 0)
      Pass = Arg.substr(7);
    else if (Arg.rfind("--annotate=", 0) == 0)
      Annotation = Arg.substr(11);
    else if (Arg.rfind("--trace=", 0) == 0)
      TracePath = Arg.substr(8);
    else if (Arg == "--dot")
      EmitDot = true;
    else if (Arg == "--stats")
      EmitStats = true;
    else if (Arg == "--stats=json") {
      EmitStats = true;
      StatsJson = true;
    } else if (Arg == "--verify")
      Verify = true;
    else if (Arg == "--help" || Arg == "-h")
      return usage();
    else if (!Arg.empty() && Arg[0] == '-')
      return usage();
    else
      File = Arg;
  }

  if (!TracePath.empty() && TracePath[0] == '-') {
    std::fprintf(stderr, "amopt: suspicious trace path '%s'\n",
                 TracePath.c_str());
    return usage();
  }

  // Validate flags before touching stdin so a bad invocation never blocks
  // on input.
  static const char *KnownPasses[] = {"uniform", "am", "lcm",  "bcm",
                                      "restricted", "cp", "pde"};
  bool PassOk = false;
  for (const char *P : KnownPasses)
    PassOk |= Pass == P;
  if (!PassOk && Passes.empty()) {
    std::fprintf(stderr, "amopt: unknown pass '%s'\n", Pass.c_str());
    return usage();
  }
  if (!Passes.empty()) {
    // Validate the pipeline spec before touching stdin.
    std::string Cur;
    for (char C : Passes + ",") {
      if (C != ',') {
        if (C != ' ')
          Cur.push_back(C);
        continue;
      }
      if (!Cur.empty() && !isKnownPass(Cur)) {
        std::fprintf(stderr, "amopt: unknown pass '%s'\n", Cur.c_str());
        return usage();
      }
      Cur.clear();
    }
  }
  AnnotationKind AnnotKind = AnnotationKind::Redundancy;
  if (!Annotation.empty() && !parseAnnotationKind(Annotation, AnnotKind)) {
    std::fprintf(stderr, "amopt: unknown annotation '%s'\n",
                 Annotation.c_str());
    return usage();
  }

  FlowGraph Input;
  if (!File.empty()) {
    std::ifstream In(File);
    if (!In) {
      std::fprintf(stderr, "amopt: cannot open '%s'\n", File.c_str());
      return 1;
    }
    std::ostringstream Buf;
    Buf << In.rdbuf();
    ParseResult R = parseProgram(Buf.str());
    if (!R.ok()) {
      std::fprintf(stderr, "amopt: %s: %s\n", File.c_str(), R.Error.c_str());
      return 1;
    }
    Input = std::move(R.Graph);
  } else if (!isatty(STDIN_FILENO)) {
    std::ostringstream Buf;
    Buf << std::cin.rdbuf();
    ParseResult R = parseProgram(Buf.str());
    if (!R.ok()) {
      std::fprintf(stderr, "amopt: <stdin>: %s\n", R.Error.c_str());
      return 1;
    }
    Input = std::move(R.Graph);
  } else {
    std::fprintf(stderr,
                 "amopt: no input; optimizing the paper's running example\n");
    Input = figure4();
  }

  if (!Annotation.empty()) {
    FlowGraph Prepared = Input;
    Prepared.splitCriticalEdges();
    std::fputs(annotate(Prepared, AnnotKind).c_str(), stdout);
    return 0;
  }

  if (!TracePath.empty())
    trace::start();

  FlowGraph Output;
  UniformStats Stats;
  std::vector<PassRecord> Records;
  if (!Passes.empty()) {
    PipelineResult R = runPipeline(Input, Passes);
    if (!R.ok()) {
      if (!TracePath.empty())
        trace::stopToJson(); // discard the partial trace
      std::fprintf(stderr, "amopt: %s\n", R.Error.c_str());
      return usage();
    }
    if (EmitStats && !StatsJson)
      for (const std::string &Line : R.Log)
        std::fprintf(stderr, "amopt: %s\n", Line.c_str());
    Records = std::move(R.Records);
    Output = std::move(R.Graph);
  } else if (Pass == "uniform") {
    Output = runUniformEmAm(Input, UniformOptions(), &Stats);
  } else if (Pass == "am") {
    Output = runAssignmentMotionOnly(Input, &Stats);
  } else if (Pass == "lcm") {
    Output = runLazyCodeMotion(Input);
  } else if (Pass == "bcm") {
    Output = runBusyCodeMotion(Input);
  } else if (Pass == "restricted") {
    Output = runRestrictedAssignmentMotion(Input);
  } else if (Pass == "cp") {
    Output = Input;
    runCopyPropagation(Output);
  } else { // "pde" — the pass list was validated up front
    Output = Input;
    Output.splitCriticalEdges();
    runPartialDeadCodeElim(Output);
    Output = simplified(Output);
  }

  if (!TracePath.empty()) {
    if (!trace::stopToFile(TracePath)) {
      std::fprintf(stderr, "amopt: cannot write trace '%s'\n",
                   TracePath.c_str());
      return 1;
    }
    // Keep stderr pure JSON under --stats=json so it can be piped
    // straight into tooling.
    if (!(EmitStats && StatsJson))
      std::fprintf(stderr,
                   "amopt: trace written to %s (open in about:tracing or "
                   "ui.perfetto.dev)\n",
                   TracePath.c_str());
  }

  if (Verify) {
    // Run both programs on a battery of pseudo-random inputs and
    // nondeterministic paths; any divergence is an optimizer bug.
    unsigned Failures = 0;
    for (uint64_t Round = 0; Round < 16; ++Round) {
      std::unordered_map<std::string, int64_t> Inputs;
      for (uint32_t V = 0; V < Input.Vars.size(); ++V)
        Inputs[Input.Vars.name(makeVarId(V))] =
            static_cast<int64_t>((Round * 2654435761u + V * 40503u) % 41) -
            20;
      Interpreter::Options Opts;
      Opts.MaxSteps = 200000;
      EquivalenceReport Rep =
          checkEquivalent(Input, Output, Inputs, Round, Opts);
      if (!Rep.Equivalent) {
        ++Failures;
        std::fprintf(stderr, "amopt: VERIFY FAILED (round %llu): %s\n",
                     (unsigned long long)Round, Rep.Detail.c_str());
      }
    }
    if (Failures != 0)
      return 3;
    // Under --stats=json the result is reported inside the JSON object
    // instead, keeping stderr machine-readable.
    if (!(EmitStats && StatsJson))
      std::fprintf(stderr,
                   "amopt: verify OK (16 rounds, identical observable "
                   "behaviour)\n");
  }

  if (EmitStats && StatsJson) {
    // One JSON object on stderr so the optimized program on stdout stays
    // pipeable: {"input": {...}, "output": {...}, "passes": [...],
    // "registry": {...}}.
    std::string Out;
    json::Writer W(Out);
    W.beginObject();
    W.key("input").beginObject();
    W.key("blocks").value(uint64_t(Input.numBlocks()));
    W.key("instrs").value(uint64_t(Input.numInstrs()));
    W.endObject();
    W.key("output").beginObject();
    W.key("blocks").value(uint64_t(Output.numBlocks()));
    W.key("instrs").value(uint64_t(Output.numInstrs()));
    W.endObject();
    if (Verify) { // reached only when all rounds agreed
      W.key("verify").beginObject();
      W.key("rounds").value(uint64_t(16));
      W.key("ok").value(true);
      W.endObject();
    }
    W.endObject();
    Out.pop_back(); // reopen the object to splice pre-rendered payloads
    Out += ",\"passes\":" + passRecordsJson(Records);
    Out += ",\"registry\":" + stats::Registry::get().dumpJsonString();
    Out += "}";
    std::fprintf(stderr, "%s\n", Out.c_str());
  } else if (EmitStats) {
    std::fprintf(stderr,
                 "amopt: %zu -> %zu instructions; %u edges split, %u "
                 "decompositions, %u AM iterations, %u eliminated\n",
                 Input.numInstrs(), Output.numInstrs(), Stats.EdgesSplit,
                 Stats.Decompositions, Stats.AmPhase.Iterations,
                 Stats.AmPhase.Eliminated);
    std::ostringstream Reg;
    stats::Registry::get().dumpText(Reg);
    std::fputs(Reg.str().c_str(), stderr);
  }

  std::fputs(EmitDot ? printDot(Output, Pass).c_str()
                     : printGraph(Output).c_str(),
             stdout);
  return 0;
}
