//===- tools/amopt.cpp - Command-line optimizer driver ---------*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
//
// amopt — optimize a program written in either front-end syntax, with
// full observability into what the algorithm did.
//
//   amopt [--pass=uniform|am|lcm|bcm|restricted|cp|pde]
//         [--passes=p1,p2,...] [--dot] [--stats[=json]] [--trace=out.json]
//         [--profile=out.json]
//         [--remarks[=out.json]] [--explain=<var|instr-id>]
//         [--report=out.html] [--facts=out.json]
//         [--verify] [--verify-remarks]
//         [--guarded] [--verify-ir] [--limits=k=v,...] [--inject=class[:site]]
//         [--annotate=redundancy|hoist|flush|live] [FILE]
//
// Reads FILE (or stdin) containing a `program { ... }` or `graph { ... }`
// source, runs the selected pass (default: uniform EM & AM), and prints
// the optimized program — or Graphviz DOT with --dot.  With no FILE and a
// terminal on stdin, optimizes the paper's running example as a demo.
//
// Observability:
//   --stats        human-readable per-pass log + registry dump on stderr
//   --stats=json   one JSON object on stderr: {"input": .., "output": ..,
//                  "passes": [PassRecord...], "registry": {counters,
//                  gauges, timers}}
//   --trace=F      write a Chrome trace_event JSON file; open it in
//                  about:tracing or https://ui.perfetto.dev — one span
//                  per pass, nested spans per dataflow solve, instant
//                  events per AM fixpoint round.
//   --profile=F    write the hierarchical self-profile as JSON: a phase
//                  tree (parse, each pass, each analysis, each dataflow
//                  solve, emission) with wall time, call counts and
//                  allocation deltas per node, plus collapsed-stack lines
//                  for flamegraph tools.  The optimized output is
//                  byte-identical with or without profiling.
//   --remarks[=F]  collect optimization remarks: one typed record per
//                  decomposition, hoist, elimination, init sink/delete
//                  and reconstruction, with the justifying dataflow
//                  facts.  Written to F as JSON, or to stderr without
//                  =F.  Combined with --dot, instructions touched by
//                  remarks are annotated in the DOT output.
//   --explain=X    print the full provenance chain of an instruction
//                  (X = stable instruction id) or of every instruction
//                  related to a variable (X = variable name), instead
//                  of the optimized program.
//   --verify-remarks
//                  re-run the uniform pipeline with remark collection on
//                  and replay every remark's cited facts against fresh
//                  analyses; exit 3 if any justification fails.
//   --report=F     flight-record the run (per-phase/per-round IR
//                  snapshots, Table 1-3 fact tables, one record per
//                  dataflow solve) and render it as a single
//                  self-contained HTML file: timeline, side-by-side round
//                  diffs with remarks anchored on the exact instruction,
//                  per-block fact tables, convergence sparklines.
//   --facts=F      the same recording as machine-readable JSON.
//
// Robustness (docs/robustness.md):
//   --guarded      run the passes through the guarded pipeline: snapshot
//                  each pass's input, verify IR invariants and spot-check
//                  semantic equivalence afterwards, and roll a failing
//                  pass back instead of letting it poison the run.
//   --verify-ir    verify IR invariants after every pass (no rollback;
//                  the run stops at the first violation).
//   --limits=SPEC  resource budgets, e.g.
//                  "am-rounds=8,growth=2.5,sweeps=100000,wall-ms=5000".
//   --inject=C[:N] arm deterministic fault class C (rae-flip,
//                  aht-skip-block, aht-misplace, edge-corrupt) at its N-th
//                  opportunity, to demonstrate the guards catch it.
//
// Exit codes: 0 success; 1 usage or I/O error; 2 parse or input-graph
// error; 3 a verification failed or a guarded pass was rolled back; 4 a
// resource budget was exhausted.
//
//===----------------------------------------------------------------------===//

#include "analysis/Annotate.h"
#include "figures/PaperFigures.h"
#include "interp/Equivalence.h"
#include "ir/InstrNumbering.h"
#include "ir/Printer.h"
#include "parser/Parser.h"
#include "report/HtmlReport.h"
#include "report/Recorder.h"
#include "support/ArgParser.h"
#include "support/EventLog.h"
#include "support/Json.h"
#include "support/Profiler.h"
#include "support/Remarks.h"
#include "support/Stats.h"
#include "support/Telemetry.h"
#include "support/ThreadPool.h"
#include "support/Trace.h"
#include "transform/BusyCodeMotion.h"
#include "transform/CopyPropagation.h"
#include "transform/LazyCodeMotion.h"
#include "transform/PartialDeadCodeElim.h"
#include "transform/Pipeline.h"
#include "transform/RestrictedAssignmentMotion.h"
#include "transform/UniformEmAm.h"
#include "verify/FaultInjector.h"
#include "verify/RemarkVerifier.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <unordered_map>

#include <unistd.h>

using namespace am;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: amopt [--pass=uniform|am|lcm|bcm|restricted|cp|pde] "
               "[--passes=p1,p2,...] [--dot]\n"
               "             [--stats[=json]] [--trace=out.json] "
               "[--profile=out.json]\n"
               "             [--remarks[=out.json]]\n"
               "             [--report=out.html] [--facts=out.json]\n"
               "             [--explain=<var|instr-id>] [--verify] "
               "[--verify-remarks]\n"
               "             [--annotate=redundancy|hoist|flush|live] "
               "[--threads=N|max] [FILE]\n"
               "\n"
               "Optimizes a `program { ... }` or `graph { ... }` source "
               "(FILE or stdin).\n"
               "--annotate prints analysis facts over the *input* instead "
               "of transforming.\n"
               "--stats reports per-pass IR deltas, timings and solver "
               "counters on stderr\n"
               "(machine-readable with --stats=json).  --trace writes "
               "Chrome trace_event JSON\n"
               "for about:tracing / Perfetto.  --profile writes the "
               "optimizer's self-profile\n"
               "(phase tree + collapsed stacks) as JSON.  --remarks "
               "records every "
               "transformation decision\n"
               "with its justifying dataflow facts; --explain renders an "
               "instruction's (or a\n"
               "variable's) provenance chain; --verify-remarks replays "
               "every remark's facts\n"
               "against fresh analyses (uniform pass only).  --report "
               "writes one self-contained\n"
               "HTML optimization report (per-round snapshots, diffs, "
               "Tables 1-3 facts);\n"
               "--facts writes the same recording as machine-readable "
               "JSON.\n"
               "--guarded snapshots each pass, verifies the result and "
               "rolls failing passes\n"
               "back; --verify-ir checks IR invariants without rollback; "
               "--limits bounds\n"
               "am-rounds/growth/sweeps/wall-ms; --inject arms a "
               "deterministic fault class\n"
               "(rae-flip|aht-skip-block|aht-misplace|edge-corrupt[:site]) "
               "for guard testing.\n"
               "Exit codes: 0 ok, 1 usage/io, 2 parse, 3 verify failure or "
               "rollback, 4 limits.\n");
  return 1;
}

/// Final-position hook for remarks::explainId: renders "bB[i]: <instr>"
/// for the instruction carrying \p Id in the optimized program, "" if the
/// id did not survive.
const std::string finalLocation(uint32_t Id, const void *Ctx) {
  const FlowGraph &G = *static_cast<const FlowGraph *>(Ctx);
  InstrLocation Loc = findInstrById(G, Id);
  if (!Loc.Found)
    return std::string();
  return "b" + std::to_string(Loc.Block) + "[" + std::to_string(Loc.Index) +
         "]: " + printInstr(G.block(Loc.Block).Instrs[Loc.Index], G.Vars);
}

/// Short per-instruction annotations for the remark-annotated DOT output:
/// how an inserted/sunk instruction got where it is, which assignments
/// were decomposed into which initializations.
std::unordered_map<uint32_t, std::string>
dotNotes(const std::vector<remarks::Remark> &All) {
  std::unordered_map<uint32_t, std::string> Notes;
  auto Tag = [](const remarks::Remark &R) {
    std::string T = "[" + R.Pass;
    if (R.Round != 0)
      T += " r" + std::to_string(R.Round);
    return T;
  };
  for (const remarks::Remark &R : All) {
    if (R.Act == remarks::Action::Insert || R.K == remarks::Kind::SinkInit) {
      std::string N = Tag(R);
      N += R.K == remarks::Kind::SinkInit ? " sunk" : " hoisted";
      if (R.Place != remarks::Placement::None) {
        N += " ";
        N += remarks::placementName(R.Place);
      }
      if (!R.Parents.empty()) {
        N += " from";
        for (uint32_t P : R.Parents)
          N += " #" + std::to_string(P);
      }
      Notes[R.InstrId] = N + "]";
    } else if (R.K == remarks::Kind::Decompose) {
      for (uint32_t New : R.NewIds)
        Notes[New] = Tag(R) + " split of #" + std::to_string(R.InstrId) + "]";
    } else if (R.K == remarks::Kind::Reconstruct) {
      Notes[R.InstrId] = Tag(R) + " reconstructed]";
    }
  }
  return Notes;
}

} // namespace

int main(int argc, char **argv) {
  std::string Pass = "uniform";
  std::string Passes;
  std::string Annotation;
  std::string TracePath;
  std::string ProfilePath;
  std::string RemarksPath;
  std::string Explain;
  std::string ReportPath;
  std::string FactsPath;
  std::string StatsValue;
  std::string LimitsSpec;
  std::string InjectSpec;
  std::string ThreadSpec;
  bool EmitDot = false, EmitStats = false, Verify = false;
  bool EmitRemarks = false, VerifyRemarks = false;
  bool Guarded = false, VerifyIR = false, Quiet = false;

  support::ArgParser Parser(
      "amopt",
      "Optimizes a `program { ... }` or `graph { ... }` source (FILE or\n"
      "stdin); with no FILE and a terminal on stdin, optimizes the paper's\n"
      "running example as a demo.");
  Parser.option("--pass", Pass, "pass to run (default: uniform)",
                "uniform|am|lcm|bcm|restricted|cp|pde");
  Parser.option("--passes", Passes, "comma-separated pass pipeline",
                "p1,p2,...");
  Parser.flag("--dot", EmitDot, "print Graphviz DOT instead of the program");
  Parser.optionalValue("--stats", EmitStats, StatsValue,
                       "per-pass IR deltas, timings and solver counters on "
                       "stderr",
                       "json");
  Parser.option("--trace", TracePath,
                "write Chrome trace_event JSON for about:tracing / Perfetto",
                "out.json");
  Parser.option("--profile", ProfilePath,
                "write the optimizer's self-profile (phase tree + "
                "collapsed stacks) as JSON",
                "out.json");
  Parser.optionalValue("--remarks", EmitRemarks, RemarksPath,
                       "record every transformation decision (stderr, or "
                       "=FILE as JSON)",
                       "out.json");
  Parser.option("--explain", Explain,
                "print an instruction's (or a variable's) provenance chain",
                "var|instr-id");
  Parser.option("--report", ReportPath,
                "write a self-contained HTML optimization report",
                "out.html");
  Parser.option("--facts", FactsPath,
                "write per-round snapshots, diffs and Table 1-3 facts as "
                "JSON",
                "out.json");
  Parser.option("--annotate", Annotation,
                "print analysis facts over the *input* instead of "
                "transforming",
                "redundancy|hoist|flush|live");
  Parser.flag("--verify", Verify,
              "interpret input and output on random inputs; exit 3 on "
              "divergence");
  Parser.flag("--verify-remarks", VerifyRemarks,
              "replay every remark's facts against fresh analyses; exit 3 "
              "on failure");
  Parser.flag("--guarded", Guarded,
              "snapshot each pass, verify its result, roll failures back; "
              "exit 3 if any pass was rolled back");
  Parser.flag("--verify-ir", VerifyIR,
              "verify IR invariants after every pass (no rollback)");
  Parser.option("--limits", LimitsSpec,
                "resource budgets; exceeded budgets exit 4",
                "am-rounds=N,growth=F,sweeps=N,wall-ms=F");
  Parser.option("--inject", InjectSpec,
                "arm a deterministic fault class for guard testing",
                "rae-flip|aht-skip-block|aht-misplace|edge-corrupt[:site]");
  Parser.option("--threads", ThreadSpec,
                "worker threads for the dataflow solves (output is "
                "identical for every value; default AM_THREADS or 1)",
                "N|max");
  Parser.flag("--quiet", Quiet,
              "suppress informational stderr notes (errors, rollback and "
              "verification diagnostics stay)");
  if (!Parser.parse(argc, argv)) {
    std::fprintf(stderr, "amopt: %s\n", Parser.error().c_str());
    return usage();
  }
  if (Parser.helpRequested()) {
    std::fputs(Parser.helpText().c_str(), stdout);
    return 0;
  }
  bool StatsJson = StatsValue == "json";
  if (EmitStats && !StatsValue.empty() && !StatsJson) {
    std::fprintf(stderr, "amopt: unknown stats format '%s'\n",
                 StatsValue.c_str());
    return usage();
  }
  // Last positional wins, as the pre-ArgParser loop behaved.
  std::string File;
  if (!Parser.positional().empty())
    File = Parser.positional().back();

  if (!TracePath.empty() && TracePath[0] == '-') {
    std::fprintf(stderr, "amopt: suspicious trace path '%s'\n",
                 TracePath.c_str());
    return usage();
  }
  if (!ProfilePath.empty() && ProfilePath[0] == '-') {
    std::fprintf(stderr, "amopt: suspicious profile path '%s'\n",
                 ProfilePath.c_str());
    return usage();
  }

  // Validate flags before touching stdin so a bad invocation never blocks
  // on input.
  static const char *KnownPasses[] = {"uniform", "am", "lcm",  "bcm",
                                      "restricted", "cp", "pde"};
  bool PassOk = false;
  for (const char *P : KnownPasses)
    PassOk |= Pass == P;
  if (!PassOk && Passes.empty()) {
    std::fprintf(stderr, "amopt: unknown pass '%s'\n", Pass.c_str());
    return usage();
  }
  if (!Passes.empty()) {
    // Validate the pipeline spec before touching stdin.
    diag::Expected<std::vector<std::string>> Spec = parsePassSpec(Passes);
    if (!Spec.ok()) {
      std::fprintf(stderr, "amopt: %s\n", Spec.diagnostic().render().c_str());
      return usage();
    }
  }
  if (!ThreadSpec.empty()) {
    std::string ThreadsErr;
    unsigned N = threads::parseThreadSpec(ThreadSpec, &ThreadsErr);
    if (N == 0) {
      std::fprintf(stderr, "amopt: --threads: %s\n", ThreadsErr.c_str());
      return usage();
    }
    threads::setGlobalThreadCount(N);
  }
  PipelineLimits Limits;
  if (!LimitsSpec.empty()) {
    diag::Expected<PipelineLimits> L = parseLimitsSpec(LimitsSpec);
    if (!L.ok()) {
      std::fprintf(stderr, "amopt: %s\n", L.diagnostic().render().c_str());
      return usage();
    }
    Limits = *L;
  }
  fault::FaultInjector Injector;
  bool Injecting = false;
  if (!InjectSpec.empty()) {
    auto F = fault::parseFaultSpec(InjectSpec);
    if (!F.ok()) {
      std::fprintf(stderr, "amopt: %s\n", F.diagnostic().render().c_str());
      return usage();
    }
    Injector.arm(F->first, F->second);
    Injector.install();
    Injecting = true;
  }
  // Guarded execution (and --verify-ir / --limits) routes through the
  // pipeline; translate a --pass selection into a one-pass pipeline spec.
  const bool UsePipeline =
      !Passes.empty() || Guarded || VerifyIR || Limits.any();
  std::string EffectiveSpec = Passes;
  if (UsePipeline && EffectiveSpec.empty()) {
    if (!isKnownPass(Pass)) {
      std::fprintf(stderr,
                   "amopt: pass '%s' cannot run under "
                   "--guarded/--verify-ir/--limits (no pipeline "
                   "equivalent)\n",
                   Pass.c_str());
      return usage();
    }
    EffectiveSpec = Pass;
  }
  if (UsePipeline && VerifyRemarks) {
    std::fprintf(stderr, "amopt: --verify-remarks cannot combine with "
                         "--guarded/--verify-ir/--limits/--passes\n");
    return usage();
  }
  AnnotationKind AnnotKind = AnnotationKind::Redundancy;
  if (!Annotation.empty() && !parseAnnotationKind(Annotation, AnnotKind)) {
    std::fprintf(stderr, "amopt: unknown annotation '%s'\n",
                 Annotation.c_str());
    return usage();
  }
  // The remark verifier replays the uniform pipeline; it has no meaning
  // for the other passes (which are not instrumented as a unit).
  if (VerifyRemarks && (Pass != "uniform" || !Passes.empty())) {
    std::fprintf(stderr,
                 "amopt: --verify-remarks requires the default uniform "
                 "pass\n");
    return usage();
  }
  if ((VerifyRemarks || EmitRemarks || !Explain.empty() ||
       !ReportPath.empty() || !FactsPath.empty()) &&
      !Annotation.empty()) {
    std::fprintf(stderr, "amopt: --annotate does not transform; remark "
                         "and report flags have no effect with it\n");
    return usage();
  }

  // One telemetry session per optimization job: the stats registry,
  // remark sink, recorder hook and profiler below all belong to this run
  // rather than to the process, so embedding amopt's logic elsewhere (or
  // a future daemon serving many jobs) gets isolated observability for
  // free.
  telemetry::Session Job;
  telemetry::SessionScope JobScope(Job);
  if (!ProfilePath.empty())
    prof::Profiler::get().setEnabled(true);

  FlowGraph Input;
  {
    AM_PROF_SCOPE("parse");
    if (!File.empty()) {
      std::ifstream In(File);
      if (!In) {
        std::fprintf(stderr, "amopt: cannot open '%s'\n", File.c_str());
        return 1;
      }
      std::ostringstream Buf;
      Buf << In.rdbuf();
      ParseResult R = parseProgram(Buf.str());
      if (!R.ok()) {
        std::fprintf(stderr, "amopt: %s: %s\n", File.c_str(),
                     R.Error.c_str());
        return 2;
      }
      Input = std::move(R.Graph);
    } else if (!isatty(STDIN_FILENO)) {
      std::ostringstream Buf;
      Buf << std::cin.rdbuf();
      ParseResult R = parseProgram(Buf.str());
      if (!R.ok()) {
        std::fprintf(stderr, "amopt: <stdin>: %s\n", R.Error.c_str());
        return 2;
      }
      Input = std::move(R.Graph);
    } else {
      if (!Quiet)
        std::fprintf(
            stderr,
            "amopt: no input; optimizing the paper's running example\n");
      Input = figure4();
    }
  }

  if (!Annotation.empty()) {
    FlowGraph Prepared = Input;
    Prepared.splitCriticalEdges();
    std::fputs(annotate(Prepared, AnnotKind).c_str(), stdout);
    return 0;
  }

  // A Session both starts collection and guarantees the file is written
  // even if a pass dies through exit() (std::atexit fallback).
  std::optional<trace::Session> TraceSession;
  if (!TracePath.empty())
    TraceSession.emplace(TracePath);

  // Remark collection: number the input's instructions up front so every
  // original occurrence has a stable id before any pass observes it.
  // --verify-remarks manages the sink itself (it clears and renumbers),
  // so only the direct collection paths prime it here.  --report/--facts
  // imply collection: the report anchors remarks on snapshot instructions
  // and the diffs key on the ids the sink assigns.
  bool Record = !ReportPath.empty() || !FactsPath.empty();
  bool CollectRemarks =
      EmitRemarks || !Explain.empty() || VerifyRemarks || Record;
  std::optional<remarks::CollectionScope> RemarkScope;
  if (CollectRemarks) {
    RemarkScope.emplace(true);
    if (!VerifyRemarks) {
      remarks::Sink::get().clear();
      ensureInstrIds(Input);
    }
  }

  // Flight recorder behind --report/--facts.  While installed, the
  // transforms snapshot every pipeline phase and AM round and capture the
  // Tables 1-3 facts at each analysis run (see report/Recorder.h).  The
  // AM_DISABLE_STATS environment variable demonstrates the degraded mode:
  // the report is still produced, with its counter panels marked
  // unavailable instead of showing half-recorded numbers.
  report::RecorderSession Recorder;
  bool StatsAvailable = true;
#ifdef AM_DISABLE_STATS
  StatsAvailable = false;
#endif
  if (Record) {
    if (!StatsAvailable || std::getenv("AM_DISABLE_STATS")) {
      stats::Registry::get().setEnabled(false);
      Recorder.setCaptureCounters(false);
      StatsAvailable = false;
    }
    Recorder.install();
    Recorder.snapshot(Input, "input");
  }

  FlowGraph Output;
  UniformStats Stats;
  std::vector<PassRecord> Records;
  unsigned RollbackCount = 0;
  bool LimitsExhausted = false;
  RemarkVerifyReport RemarkReport;
  if (VerifyRemarks) {
    RemarkReport = verifyUniformRemarks(Input);
    Output = RemarkReport.Output;
  } else if (UsePipeline) {
    PipelineOptions POpts;
    POpts.Guarded = Guarded;
    POpts.VerifyIR = VerifyIR;
    POpts.Limits = Limits;
    POpts.Telemetry = &Job;
    PipelineResult R = runPipeline(Input, EffectiveSpec, POpts);
    Records = std::move(R.Records);
    RollbackCount = R.RollbackCount;
    LimitsExhausted = R.LimitsExhausted;
    if (!R.ok() && !R.LimitsExhausted) {
      if (TraceSession)
        TraceSession->close(); // flush what the partial run recorded
      std::fprintf(stderr, "amopt: %s\n",
                   R.Diag.empty() ? R.Error.c_str()
                                  : R.Diag.render().c_str());
      // Spec errors were caught up front; what remains is a bad input
      // graph (nothing ran: exit 2) or a --verify-ir violation after some
      // pass (exit 3).
      return Records.empty() ? 2 : 3;
    }
    if (LimitsExhausted)
      std::fprintf(stderr, "amopt: %s\n", R.Diag.render().c_str());
    if (!(EmitStats && StatsJson)) {
      // Rollback diagnostics name the program (file + content hash) so
      // they stay attributable when many jobs share one stderr — the same
      // "[name hash]" prefix ambatch uses for its per-job diagnostics.
      std::string Tag =
          "[" + (File.empty() ? std::string("<stdin>") : File) + " " +
          fleet::hex16(fleet::fnv1a64(printGraph(Input))).substr(0, 8) + "]";
      for (const PassRecord &Rec : Records)
        if (Rec.Status == PassStatus::RolledBack)
          std::fprintf(stderr, "amopt: %s pass '%s' rolled back: %s\n",
                       Tag.c_str(), Rec.Name.c_str(), Rec.Violation.c_str());
    }
    if (EmitStats && !StatsJson)
      for (const std::string &Line : R.Log)
        std::fprintf(stderr, "amopt: %s\n", Line.c_str());
    Output = std::move(R.Graph);
  } else if (Pass == "uniform") {
    Output = runUniformEmAm(Input, UniformOptions(), &Stats);
  } else if (Pass == "am") {
    Output = runAssignmentMotionOnly(Input, &Stats);
  } else if (Pass == "lcm") {
    Output = runLazyCodeMotion(Input);
  } else if (Pass == "bcm") {
    Output = runBusyCodeMotion(Input);
  } else if (Pass == "restricted") {
    Output = runRestrictedAssignmentMotion(Input);
  } else if (Pass == "cp") {
    Output = Input;
    runCopyPropagation(Output);
  } else { // "pde" — the pass list was validated up front
    Output = Input;
    Output.splitCriticalEdges();
    runPartialDeadCodeElim(Output);
    Output = simplified(Output);
  }

  // Close the recording before anything downstream (verify interpreters,
  // stats dumps) can run more solves against it.
  if (Record) {
    Recorder.snapshot(Output, "final");
    Recorder.uninstall();
  }

  if (TraceSession) {
    if (!TraceSession->close()) {
      std::fprintf(stderr, "amopt: cannot write trace '%s'\n",
                   TracePath.c_str());
      return 1;
    }
    // Keep stderr pure JSON under --stats=json so it can be piped
    // straight into tooling.
    if (!Quiet && !(EmitStats && StatsJson))
      std::fprintf(stderr,
                   "amopt: trace written to %s (open in about:tracing or "
                   "ui.perfetto.dev)\n",
                   TracePath.c_str());
  }

  if (Verify) {
    // Run both programs on a battery of pseudo-random inputs and
    // nondeterministic paths; any divergence is an optimizer bug.
    unsigned Failures = 0;
    for (uint64_t Round = 0; Round < 16; ++Round) {
      std::unordered_map<std::string, int64_t> Inputs;
      for (uint32_t V = 0; V < Input.Vars.size(); ++V)
        Inputs[Input.Vars.name(makeVarId(V))] =
            static_cast<int64_t>((Round * 2654435761u + V * 40503u) % 41) -
            20;
      Interpreter::Options Opts;
      Opts.MaxSteps = 200000;
      EquivalenceReport Rep =
          checkEquivalent(Input, Output, Inputs, Round, Opts);
      if (!Rep.Equivalent) {
        ++Failures;
        std::fprintf(stderr, "amopt: VERIFY FAILED (round %llu): %s\n",
                     (unsigned long long)Round, Rep.Detail.c_str());
      }
    }
    if (Failures != 0)
      return 3;
    // Under --stats=json the result is reported inside the JSON object
    // instead, keeping stderr machine-readable.
    if (!Quiet && !(EmitStats && StatsJson))
      std::fprintf(stderr,
                   "amopt: verify OK (16 rounds, identical observable "
                   "behaviour)\n");
  }

  std::vector<remarks::Remark> AllRemarks;
  if (CollectRemarks)
    AllRemarks = remarks::Sink::get().remarks();

  // Persist the remark stream before reporting verification failures so a
  // failing run still leaves the evidence on disk.
  if (!RemarksPath.empty()) {
    std::ofstream Out(RemarksPath);
    if (!Out) {
      std::fprintf(stderr, "amopt: cannot write remarks '%s'\n",
                   RemarksPath.c_str());
      return 1;
    }
    Out << remarks::Sink::get().toJsonString() << "\n";
  } else if (EmitRemarks) {
    std::fprintf(stderr, "%s\n", remarks::Sink::get().toJsonString().c_str());
  }

  // The recording artifacts, likewise persisted before any verification
  // verdict can fail the process.
  if (!FactsPath.empty()) {
    std::ofstream Out(FactsPath);
    if (!Out) {
      std::fprintf(stderr, "amopt: cannot write facts '%s'\n",
                   FactsPath.c_str());
      return 1;
    }
    Out << Recorder.toJsonString(&AllRemarks) << "\n";
  }
  if (!ReportPath.empty()) {
    report::ReportMeta Meta;
    Meta.Title = File.empty() ? "<stdin>" : File;
    Meta.PassSpec = Passes.empty() ? Pass : Passes;
    Meta.InputText = printGraph(Input);
    Meta.OutputText = printGraph(Output);
    Meta.Remarks = AllRemarks;
    Meta.StatsAvailable = StatsAvailable;
    std::ofstream Out(ReportPath);
    if (!Out) {
      std::fprintf(stderr, "amopt: cannot write report '%s'\n",
                   ReportPath.c_str());
      return 1;
    }
    Out << report::renderHtmlReport(Recorder, Meta);
    if (!Quiet && !(EmitStats && StatsJson))
      std::fprintf(stderr, "amopt: report written to %s\n",
                   ReportPath.c_str());
  }

  if (VerifyRemarks) {
    for (const std::string &Line : RemarkReport.Failures)
      std::fprintf(stderr, "amopt: REMARK VERIFY FAILED: %s\n", Line.c_str());
    if (!RemarkReport.ok())
      return 3;
    if (!Quiet && !(EmitStats && StatsJson))
      std::fprintf(stderr,
                   "amopt: remark verify OK (%u remarks replayed against "
                   "fresh analyses)\n",
                   RemarkReport.Checked);
  }

  // Fold process-memory gauges (peak RSS, cumulative allocations) into
  // the registry right before it is dumped; on platforms without the
  // sources the gauges are simply absent.
  if (EmitStats)
    prof::recordMemoryGauges(stats::Registry::get());
  if (EmitStats && StatsJson) {
    // One JSON object on stderr so the optimized program on stdout stays
    // pipeable: {"input": {...}, "output": {...}, "passes": [...],
    // "registry": {...}}.
    std::string Out;
    json::Writer W(Out);
    W.beginObject();
    W.key("input").beginObject();
    W.key("blocks").value(uint64_t(Input.numBlocks()));
    W.key("instrs").value(uint64_t(Input.numInstrs()));
    W.endObject();
    W.key("output").beginObject();
    W.key("blocks").value(uint64_t(Output.numBlocks()));
    W.key("instrs").value(uint64_t(Output.numInstrs()));
    W.endObject();
    if (Verify) { // reached only when all rounds agreed
      W.key("verify").beginObject();
      W.key("rounds").value(uint64_t(16));
      W.key("ok").value(true);
      W.endObject();
    }
    W.endObject();
    Out.pop_back(); // reopen the object to splice pre-rendered payloads
    Out += ",\"passes\":" + passRecordsJson(Records);
    Out += ",\"registry\":" + stats::Registry::get().dumpJsonString();
    Out += "}";
    std::fprintf(stderr, "%s\n", Out.c_str());
  } else if (EmitStats) {
    std::fprintf(stderr,
                 "amopt: %zu -> %zu instructions; %u edges split, %u "
                 "decompositions, %u AM iterations, %u eliminated\n",
                 Input.numInstrs(), Output.numInstrs(), Stats.EdgesSplit,
                 Stats.Decompositions, Stats.AmPhase.Iterations,
                 Stats.AmPhase.Eliminated);
    std::ostringstream Reg;
    stats::Registry::get().dumpText(Reg);
    std::fputs(Reg.str().c_str(), stderr);
  }

  if (Injecting && Injector.firedCount() == 0 && !Quiet &&
      !(EmitStats && StatsJson))
    std::fprintf(stderr,
                 "amopt: note: injected fault '%s' never fired (no "
                 "opportunity in this run)\n",
                 InjectSpec.c_str());
  // Guarded outcomes dominate the exit code once every artifact is out.
  const int GuardRc = LimitsExhausted ? 4 : (RollbackCount != 0 ? 3 : 0);

  // The profile is written after the "emit" scope closes so the phase
  // tree covers emission too.  It goes to its own file: the program on
  // stdout is byte-identical with or without --profile.
  auto WriteProfile = [&]() -> bool {
    if (ProfilePath.empty())
      return true;
    if (!prof::Profiler::get().writeJsonFile(ProfilePath)) {
      std::fprintf(stderr, "amopt: cannot write profile '%s'\n",
                   ProfilePath.c_str());
      return false;
    }
    if (!Quiet && !(EmitStats && StatsJson))
      std::fprintf(stderr, "amopt: profile written to %s\n",
                   ProfilePath.c_str());
    return true;
  };

  if (!Explain.empty()) {
    // Provenance chains replace the program on stdout.
    remarks::Provenance Prov = remarks::Provenance::build(AllRemarks);
    std::vector<uint32_t> Ids;
    bool Numeric = !Explain.empty() &&
                   Explain.find_first_not_of("0123456789") == std::string::npos;
    if (Numeric)
      Ids.push_back(static_cast<uint32_t>(std::stoul(Explain)));
    else
      Ids = Prov.idsForVar(Explain, AllRemarks);
    if (Ids.empty()) {
      std::fprintf(stderr,
                   "amopt: nothing to explain for '%s' (no remark mentions "
                   "it)\n",
                   Explain.c_str());
      return 1;
    }
    // One chain per lineage family: ids whose family was already rendered
    // are skipped so a variable's history is not repeated per member.
    std::set<uint32_t> Covered;
    for (uint32_t Id : Ids) {
      if (Covered.count(Id))
        continue;
      for (uint32_t Member : Prov.family(Id))
        Covered.insert(Member);
      std::fputs(
          remarks::explainId(Id, AllRemarks, Prov, finalLocation, &Output)
              .c_str(),
          stdout);
    }
    if (!WriteProfile())
      return 1;
    return GuardRc;
  }

  if (EmitDot && CollectRemarks) {
    std::unordered_map<uint32_t, std::string> Notes = dotNotes(AllRemarks);
    auto Note = [&Notes](const Instr &I) {
      auto It = Notes.find(I.Id);
      return It == Notes.end() ? std::string() : It->second;
    };
    {
      AM_PROF_SCOPE("emit");
      std::fputs(printDot(Output, Pass, Note).c_str(), stdout);
    }
    if (!WriteProfile())
      return 1;
    return GuardRc;
  }

  {
    AM_PROF_SCOPE("emit");
    std::fputs(EmitDot ? printDot(Output, Pass).c_str()
                       : printGraph(Output).c_str(),
               stdout);
  }
  if (!WriteProfile())
    return 1;
  return GuardRc;
}
